package remote

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMemSourceReadWrite(t *testing.T) {
	m := NewMemSource([]byte("hello world"))
	buf := make([]byte, 5)
	if n, err := m.ReadAt(buf, 6); n != 5 || err != nil || string(buf) != "world" {
		t.Errorf("ReadAt = (%d, %v, %q)", n, err, buf)
	}
	if _, err := m.WriteAt([]byte("WORLD"), 6); err != nil {
		t.Fatal(err)
	}
	if got := string(m.Bytes()); got != "hello WORLD" {
		t.Errorf("Bytes = %q", got)
	}
}

func TestMemSourceReadPastEnd(t *testing.T) {
	m := NewMemSource([]byte("abc"))
	buf := make([]byte, 10)
	n, err := m.ReadAt(buf, 1)
	if n != 2 || !errors.Is(err, io.EOF) {
		t.Errorf("ReadAt = (%d, %v), want (2, EOF)", n, err)
	}
	if _, err := m.ReadAt(buf, 3); !errors.Is(err, io.EOF) {
		t.Errorf("ReadAt at end err = %v, want EOF", err)
	}
	if _, err := m.ReadAt(buf, 100); !errors.Is(err, io.EOF) {
		t.Errorf("ReadAt past end err = %v, want EOF", err)
	}
}

func TestMemSourceWriteExtends(t *testing.T) {
	m := NewMemSource(nil)
	if _, err := m.WriteAt([]byte("tail"), 8); err != nil {
		t.Fatal(err)
	}
	if size, _ := m.Size(); size != 12 {
		t.Errorf("Size = %d, want 12", size)
	}
	got := m.Bytes()
	if !bytes.Equal(got[:8], make([]byte, 8)) {
		t.Errorf("gap = %v, want zeros", got[:8])
	}
	if string(got[8:]) != "tail" {
		t.Errorf("tail = %q", got[8:])
	}
}

func TestMemSourceTruncate(t *testing.T) {
	m := NewMemSource([]byte("0123456789"))
	if err := m.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if got := string(m.Bytes()); got != "0123" {
		t.Errorf("after shrink = %q", got)
	}
	if err := m.Truncate(6); err != nil {
		t.Fatal(err)
	}
	if got := m.Bytes(); len(got) != 6 || got[4] != 0 || got[5] != 0 {
		t.Errorf("after grow = %v", got)
	}
	if err := m.Truncate(-1); err == nil {
		t.Error("Truncate(-1) succeeded")
	}
}

func TestMemSourceClosed(t *testing.T) {
	m := NewMemSource([]byte("x"))
	m.Close()
	if _, err := m.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrSourceClosed) {
		t.Errorf("ReadAt err = %v, want ErrSourceClosed", err)
	}
	if _, err := m.WriteAt([]byte("y"), 0); !errors.Is(err, ErrSourceClosed) {
		t.Errorf("WriteAt err = %v, want ErrSourceClosed", err)
	}
	if _, err := m.Size(); !errors.Is(err, ErrSourceClosed) {
		t.Errorf("Size err = %v, want ErrSourceClosed", err)
	}
	if err := m.Truncate(0); !errors.Is(err, ErrSourceClosed) {
		t.Errorf("Truncate err = %v, want ErrSourceClosed", err)
	}
}

func TestMemSourceSeededCopyIsIndependent(t *testing.T) {
	seed := []byte("seed")
	m := NewMemSource(seed)
	seed[0] = 'X'
	if got := string(m.Bytes()); got != "seed" {
		t.Errorf("seed mutation leaked: %q", got)
	}
}

func startServer(t *testing.T) (*FileServer, string) {
	t.Helper()
	srv := NewFileServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func TestClientReadWriteOverTCP(t *testing.T) {
	srv, addr := startServer(t)
	srv.Put("obj", []byte("remote contents"))

	c, err := Dial(addr, "obj")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	buf := make([]byte, 6)
	if n, err := c.ReadAt(buf, 7); n != 6 || err != nil || string(buf) != "conten" {
		t.Errorf("ReadAt = (%d, %v, %q)", n, err, buf)
	}
	if size, err := c.Size(); size != 15 || err != nil {
		t.Errorf("Size = (%d, %v), want 15", size, err)
	}
	if _, err := c.WriteAt([]byte("REMOTE"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got, _ := srv.Get("obj")
	if string(got) != "REMOTE contents" {
		t.Errorf("server object = %q", got)
	}
	if err := c.Truncate(6); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	got, _ = srv.Get("obj")
	if string(got) != "REMOTE" {
		t.Errorf("after truncate = %q", got)
	}
}

func TestClientReadPastEndEOF(t *testing.T) {
	srv, addr := startServer(t)
	srv.Put("short", []byte("ab"))
	c, err := Dial(addr, "short")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 8)
	n, err := c.ReadAt(buf, 0)
	if n != 2 || !errors.Is(err, io.EOF) {
		// partial read then EOF on the next chunk attempt is also acceptable:
		// the client loop stops at a zero-byte chunk.
		if n != 2 || err != nil {
			t.Errorf("ReadAt = (%d, %v), want 2 bytes", n, err)
		}
	}
	if string(buf[:2]) != "ab" {
		t.Errorf("data = %q", buf[:2])
	}
}

func TestClientOpenCreatesMissingObject(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr, "fresh")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.WriteAt([]byte("new"), 0); err != nil {
		t.Fatal(err)
	}
	got, ok := srv.Get("fresh")
	if !ok || string(got) != "new" {
		t.Errorf("object = (%q, %v)", got, ok)
	}
}

func TestClientConcurrentCallers(t *testing.T) {
	srv, addr := startServer(t)
	data := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(data)
	srv.Put("obj", data)

	c, err := Dial(addr, "obj")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < 50; i++ {
				off := int64((g*50 + i) * 64 % (len(data) - 64))
				if _, err := c.ReadAt(buf, off); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf, data[off:off+64]) {
					errs <- errors.New("payload mismatch")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestPutVisibleToOpenConnections(t *testing.T) {
	// Replacing an object with Put must be visible to sessions opened
	// before the replacement: the connection binds the NAME, not a
	// snapshot. (Cache-invalidation scenarios depend on this.)
	srv, addr := startServer(t)
	srv.Put("obj", []byte("old"))
	c, err := Dial(addr, "obj")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 3)
	if _, err := c.ReadAt(buf, 0); err != nil || string(buf) != "old" {
		t.Fatalf("first read = (%q, %v)", buf, err)
	}
	srv.Put("obj", []byte("new"))
	if _, err := c.ReadAt(buf, 0); err != nil || string(buf) != "new" {
		t.Errorf("read after Put = (%q, %v), want replacement visible", buf, err)
	}
}

func TestClientAfterClose(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, "obj")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrSourceClosed) {
		t.Errorf("ReadAt after close err = %v, want ErrSourceClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestClientServerShutdownMidSession(t *testing.T) {
	srv, addr := startServer(t)
	srv.Put("obj", []byte("x"))
	c, err := Dial(addr, "obj")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Close()
	if _, err := c.ReadAt(make([]byte, 1), 0); err == nil {
		t.Error("ReadAt succeeded after server shutdown")
	}
}

func TestServerFaultInjection(t *testing.T) {
	srv, addr := startServer(t)
	srv.Put("obj", []byte("data"))
	c, err := Dial(addr, "obj")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	srv.FailNext(errors.New("disk exploded"))
	if _, err := c.ReadAt(make([]byte, 4), 0); err == nil {
		t.Error("injected fault not observed")
	}
	// The fault is one-shot; the next operation succeeds.
	buf := make([]byte, 4)
	if _, err := c.ReadAt(buf, 0); err != nil || string(buf) != "data" {
		t.Errorf("recovery read = (%q, %v)", buf, err)
	}
}

func TestServerLatencyInjection(t *testing.T) {
	srv, addr := startServer(t)
	srv.Put("obj", []byte("data"))
	srv.SetLatency(30 * time.Millisecond)
	c, err := Dial(addr, "obj")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.ReadAt(make([]byte, 4), 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
}

func TestClientRemoteRoundTripProperty(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr, "prop")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Put("prop", nil)

	f := func(data []byte, off uint16) bool {
		if len(data) == 0 {
			return true
		}
		o := int64(off)
		if _, err := c.WriteAt(data, o); err != nil {
			return false
		}
		back := make([]byte, len(data))
		if _, err := c.ReadAt(back, o); err != nil && !errors.Is(err, io.EOF) {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSlowSourceDelays(t *testing.T) {
	s := NewSlowSource(NewMemSource([]byte("abc")), 20*time.Millisecond)
	start := time.Now()
	if _, err := s.ReadAt(make([]byte, 3), 0); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("delay not applied")
	}
}

func TestFlakySourceTripAndHeal(t *testing.T) {
	boom := errors.New("network partition")
	s := NewFlakySource(NewMemSource([]byte("abc")))

	buf := make([]byte, 3)
	if _, err := s.ReadAt(buf, 0); err != nil {
		t.Fatalf("healthy ReadAt: %v", err)
	}
	s.Trip(boom)
	if _, err := s.ReadAt(buf, 0); !errors.Is(err, boom) {
		t.Errorf("tripped ReadAt err = %v, want %v", err, boom)
	}
	if _, err := s.WriteAt(buf, 0); !errors.Is(err, boom) {
		t.Errorf("tripped WriteAt err = %v, want %v", err, boom)
	}
	if _, err := s.Size(); !errors.Is(err, boom) {
		t.Errorf("tripped Size err = %v, want %v", err, boom)
	}
	if err := s.Truncate(0); !errors.Is(err, boom) {
		t.Errorf("tripped Truncate err = %v, want %v", err, boom)
	}
	s.Trip(nil)
	if _, err := s.ReadAt(buf, 0); err != nil {
		t.Errorf("healed ReadAt: %v", err)
	}
}
