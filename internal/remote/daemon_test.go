package remote

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/faultinject"
	"repro/internal/wire"
)

// startTenantServer is the shared fixture: a FileServer with a session
// registry enforcing q, seeded with one object per listed name.
func startTenantServer(t *testing.T, q daemon.Quotas, names ...string) (*FileServer, string) {
	t.Helper()
	srv := NewFileServer()
	srv.SetRegistry(daemon.NewRegistry(q))
	for _, name := range names {
		srv.Put(name, []byte("0123456789abcdef"))
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return srv, addr
}

// TestTenantSessionQuotaTyped: a tenant at its session cap is refused at
// open with wire.ErrQuotaExceeded — typed all the way through the client —
// while other tenants still get in.
func TestTenantSessionQuotaTyped(t *testing.T) {
	faultinject.LeakCheck(t)
	srv, addr := startTenantServer(t, daemon.Quotas{MaxSessions: 2},
		"acme/obj", "rival/obj")
	defer srv.Close()

	c1, err := Dial(addr, "acme/obj")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr, "acme/obj")
	if err != nil {
		t.Fatal(err)
	}

	// Third acme session: refused, typed. Dialing must not retry a quota
	// rejection into success.
	if _, err := DialWith(addr, "acme/obj", DialOptions{MaxRetries: -1}); !errors.Is(err, wire.ErrQuotaExceeded) {
		t.Fatalf("over-quota dial error = %v, want wire.ErrQuotaExceeded", err)
	}

	// A different tenant is unaffected.
	cr, err := Dial(addr, "rival/obj")
	if err != nil {
		t.Fatalf("rival tenant starved: %v", err)
	}
	cr.Close()

	// Closing a session frees the slot for readmission. The client's
	// goodbye is asynchronous, so poll briefly.
	c2.Close()
	var c3 *Client
	deadline := time.Now().Add(2 * time.Second)
	for {
		c3, err = Dial(addr, "acme/obj")
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("readmission after close: %v", err)
	}
	c3.Close()

	st := srv.Registry().Snapshot()
	var acme *daemon.TenantStats
	for i := range st.Tenants {
		if st.Tenants[i].Name == "acme" {
			acme = &st.Tenants[i]
		}
	}
	if acme == nil || acme.RejectedQuota == 0 || acme.PeakSessions != 2 {
		t.Errorf("acme row = %+v", acme)
	}
}

// TestTenantBackpressureNeverDeadlocks: with a tight in-flight bound and a
// slow backend, a burst of concurrent reads splits into served operations
// and typed wire.ErrOverloaded rejections — nothing queues unboundedly,
// nothing deadlocks, and the gauges settle to zero.
func TestTenantBackpressureNeverDeadlocks(t *testing.T) {
	faultinject.LeakCheck(t)
	srv, addr := startTenantServer(t, daemon.Quotas{MaxInFlight: 2}, "acme/obj")
	defer srv.Close()
	srv.SetLatency(2 * time.Millisecond) // hold ops so the bound bites

	c, err := Dial(addr, "acme/obj")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const readers = 16
	var (
		wg         sync.WaitGroup
		served     atomic.Uint64
		overloaded atomic.Uint64
	)
	done := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 4)
			_, rerr := c.ReadAt(buf, int64(i%8))
			switch {
			case rerr == nil:
				served.Add(1)
			case errors.Is(rerr, wire.ErrOverloaded):
				overloaded.Add(1)
			default:
				t.Errorf("read %d: unexpected error %v", i, rerr)
			}
		}(i)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("backpressure deadlocked the read burst")
	}
	if served.Load() == 0 {
		t.Error("no reads served under backpressure")
	}
	if overloaded.Load() == 0 {
		t.Error("no reads rejected: the in-flight bound never engaged")
	}
	st := srv.Registry().Snapshot()
	if st.InFlight != 0 {
		t.Errorf("in-flight gauge = %d after burst settled", st.InFlight)
	}
	if st.Tenants[0].RejectedOverload != overloaded.Load() {
		t.Errorf("server counted %d overload rejections, clients saw %d",
			st.Tenants[0].RejectedOverload, overloaded.Load())
	}
}

// TestGracefulDrain: shutdown with an operation in flight lets it finish
// and flush, answers later requests with the typed wire.ErrShuttingDown,
// and leaves no goroutine behind. This pins the lifecycle bug where Close
// cut connections mid-frame and clients saw io.ErrUnexpectedEOF.
func TestGracefulDrain(t *testing.T) {
	faultinject.LeakCheck(t)
	srv, addr := startTenantServer(t, daemon.Quotas{}, "acme/obj")
	srv.SetLatency(20 * time.Millisecond) // in-flight work spans the drain

	// No retries: a shutdown rejection must surface, not be retried into a
	// reconnect loop against a closed listener.
	c, err := DialWith(addr, "acme/obj", DialOptions{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	inFlightErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 4)
		_, rerr := c.ReadAt(buf, 0)
		inFlightErr <- rerr
	}()
	time.Sleep(5 * time.Millisecond) // let the read reach the server

	shutdownDone := make(chan bool, 1)
	go func() { shutdownDone <- srv.Shutdown(5 * time.Second) }()
	time.Sleep(2 * time.Millisecond) // let drain flip the intake gate

	// A request arriving during the drain is refused, typed.
	buf := make([]byte, 4)
	_, lateErr := c.ReadAt(buf, 4)

	if err := <-inFlightErr; err != nil {
		t.Errorf("in-flight read not drained: %v", err)
	}
	if lateErr == nil {
		// The drain won the race and completed before the late read was
		// sent; acceptable only if the server reported a clean quiesce.
		t.Log("late read landed after connection close")
	} else if !errors.Is(lateErr, wire.ErrShuttingDown) {
		if errors.Is(lateErr, io.ErrUnexpectedEOF) {
			t.Errorf("late read saw a torn frame: %v", lateErr)
		} else {
			t.Logf("late read error (post-close transport): %v", lateErr)
		}
	}
	if clean := <-shutdownDone; !clean {
		t.Error("shutdown reported a forced teardown, want clean drain")
	}
}

// TestManyTenantStress runs a fleet of tenants opening, reading, and
// closing concurrently against quotas, then drains the daemon under load:
// typed rejections only, gauges at zero afterwards, zero leaked
// goroutines. The race tier runs this under -race.
func TestManyTenantStress(t *testing.T) {
	faultinject.LeakCheck(t)
	const (
		tenants     = 8
		sessions    = 4 // per tenant, equal to the quota
		opsPerConn  = 10
		maxInFlight = 16
	)
	q := daemon.Quotas{MaxSessions: sessions, MaxInFlight: maxInFlight}
	srv := NewFileServer()
	srv.SetRegistry(daemon.NewRegistry(q))
	for i := 0; i < tenants; i++ {
		srv.Put(fmt.Sprintf("t%d/obj", i), []byte("0123456789abcdef"))
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var (
		wg       sync.WaitGroup
		served   atomic.Uint64
		rejected atomic.Uint64
	)
	for ten := 0; ten < tenants; ten++ {
		// One extra contender per tenant so the session quota engages.
		for sess := 0; sess < sessions+1; sess++ {
			wg.Add(1)
			go func(ten int) {
				defer wg.Done()
				name := fmt.Sprintf("t%d/obj", ten)
				c, err := DialWith(addr, name, DialOptions{MaxRetries: -1})
				if errors.Is(err, wire.ErrQuotaExceeded) {
					rejected.Add(1)
					return
				}
				if err != nil {
					t.Errorf("tenant %d dial: %v", ten, err)
					return
				}
				defer c.Close()
				buf := make([]byte, 8)
				for i := 0; i < opsPerConn; i++ {
					_, rerr := c.ReadAt(buf, int64(i%8))
					if rerr != nil && !errors.Is(rerr, wire.ErrOverloaded) {
						t.Errorf("tenant %d read: %v", ten, rerr)
						return
					}
				}
				served.Add(1)
			}(ten)
		}
	}
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no tenant session completed")
	}

	st := srv.Registry().Snapshot()
	if st.InFlight != 0 {
		t.Errorf("in-flight gauge = %d after the fleet settled", st.InFlight)
	}
	if len(st.Tenants) != tenants {
		t.Errorf("tenant rows = %d, want %d", len(st.Tenants), tenants)
	}
	for _, row := range st.Tenants {
		if row.Ops == 0 {
			t.Errorf("tenant %s recorded no ops", row.Name)
		}
		if row.PeakSessions > sessions {
			t.Errorf("tenant %s peaked at %d sessions past quota %d",
				row.Name, row.PeakSessions, sessions)
		}
	}
	if !srv.Shutdown(5 * time.Second) {
		t.Error("drain under load did not quiesce cleanly")
	}
	if got := srv.Registry().Snapshot(); got.Sessions != 0 || got.InFlight != 0 {
		t.Errorf("post-drain gauges: sessions=%d inflight=%d", got.Sessions, got.InFlight)
	}
}
