package remote

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
)

// MailServer is a TCP message drop with POP-flavoured retrieval and
// SMTP-flavoured delivery, serving the paper's §3 mail examples: "an inbox
// file ... such that reading it causes new messages to be retrieved possibly
// from multiple remote POP servers" and an outbox sentinel that sends each
// written message to its recipients.
//
// Protocol (line-oriented, lengths in bytes):
//
//	SEND <mailbox> <len>\n<len raw bytes>  -> +OK
//	RETR <mailbox>                         -> +OK <n>, then per message
//	                                          <len>\n<bytes>, finally .
//	TAKE <mailbox>                         -> like RETR but removes messages
//	STAT <mailbox>                         -> +OK <n>
type MailServer struct {
	mu     sync.Mutex
	boxes  map[string][][]byte
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
}

// maxMailMessage bounds a single message.
const maxMailMessage = 1 << 20

// NewMailServer returns an empty message drop.
func NewMailServer() *MailServer {
	return &MailServer{
		boxes: make(map[string][][]byte),
		conns: make(map[net.Conn]struct{}),
	}
}

// Deposit places a message directly into a mailbox (test/seed helper).
func (s *MailServer) Deposit(mailbox string, msg []byte) {
	copied := make([]byte, len(msg))
	copy(copied, msg)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.boxes[mailbox] = append(s.boxes[mailbox], copied)
}

// Count returns the number of messages waiting in mailbox.
func (s *MailServer) Count(mailbox string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.boxes[mailbox])
}

// Messages returns copies of the messages in mailbox.
func (s *MailServer) Messages(mailbox string) [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, len(s.boxes[mailbox]))
	for i, m := range s.boxes[mailbox] {
		out[i] = append([]byte(nil), m...)
	}
	return out
}

// Start begins serving on addr and returns the bound address.
func (s *MailServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("mail server listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the server and all connections.
func (s *MailServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *MailServer) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "SEND":
			if len(fields) != 3 {
				fmt.Fprintln(w, "-ERR usage: SEND <mailbox> <len>")
				break
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 || n > maxMailMessage {
				fmt.Fprintln(w, "-ERR bad length")
				break
			}
			msg := make([]byte, n)
			if _, err := io.ReadFull(r, msg); err != nil {
				return
			}
			s.mu.Lock()
			s.boxes[fields[1]] = append(s.boxes[fields[1]], msg)
			s.mu.Unlock()
			fmt.Fprintln(w, "+OK")

		case "RETR", "TAKE":
			if len(fields) != 2 {
				fmt.Fprintln(w, "-ERR usage: RETR <mailbox>")
				break
			}
			s.mu.Lock()
			msgs := s.boxes[fields[1]]
			if fields[0] == "TAKE" {
				delete(s.boxes, fields[1])
			}
			s.mu.Unlock()
			fmt.Fprintf(w, "+OK %d\n", len(msgs))
			for _, m := range msgs {
				fmt.Fprintf(w, "%d\n", len(m))
				w.Write(m)
			}
			fmt.Fprintln(w, ".")

		case "STAT":
			if len(fields) != 2 {
				fmt.Fprintln(w, "-ERR usage: STAT <mailbox>")
				break
			}
			s.mu.Lock()
			n := len(s.boxes[fields[1]])
			s.mu.Unlock()
			fmt.Fprintf(w, "+OK %d\n", n)

		default:
			fmt.Fprintln(w, "-ERR unknown command")
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// FetchMail retrieves every message from mailbox at addr; with take, the
// messages are removed from the server (POP retrieve-and-delete).
func FetchMail(addr, mailbox string, take bool) ([][]byte, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial mail server %s: %w", addr, err)
	}
	defer conn.Close()
	verb := "RETR"
	if take {
		verb = "TAKE"
	}
	if _, err := fmt.Fprintf(conn, "%s %s\n", verb, mailbox); err != nil {
		return nil, fmt.Errorf("send %s: %w", verb, err)
	}
	r := bufio.NewReader(conn)
	status, err := r.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("mail status: %w", err)
	}
	var count int
	if _, err := fmt.Sscanf(status, "+OK %d", &count); err != nil {
		return nil, fmt.Errorf("mail server error: %s", strings.TrimSpace(status))
	}
	msgs := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		lenLine, err := r.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("message %d header: %w", i, err)
		}
		n, err := strconv.Atoi(strings.TrimSpace(lenLine))
		if err != nil || n < 0 || n > maxMailMessage {
			return nil, fmt.Errorf("message %d: bad length %q", i, strings.TrimSpace(lenLine))
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(r, msg); err != nil {
			return nil, fmt.Errorf("message %d body: %w", i, err)
		}
		msgs = append(msgs, msg)
	}
	return msgs, nil
}

// DeliverMail sends one message into mailbox at addr, the outbox sentinel's
// transmission step.
func DeliverMail(addr, mailbox string, msg []byte) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("dial mail server %s: %w", addr, err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "SEND %s %d\n", mailbox, len(msg)); err != nil {
		return fmt.Errorf("send header: %w", err)
	}
	if _, err := conn.Write(msg); err != nil {
		return fmt.Errorf("send body: %w", err)
	}
	status, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("delivery status: %w", err)
	}
	if !strings.HasPrefix(status, "+OK") {
		return fmt.Errorf("mail server rejected delivery: %s", strings.TrimSpace(status))
	}
	return nil
}
