package remote

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// HTTPSource is a Source over plain HTTP — the paper's §3 aggregation
// example accesses remote files "using a standard protocol (e.g., FTP or
// HTTP)". Reads use ranged GETs, Size uses HEAD, writes use PUT of the full
// object (read-modify-write), and Truncate rewrites the object at the new
// length. It interoperates with any HTTP server honouring Range, including
// ObjectServer below.
type HTTPSource struct {
	url    string
	client *http.Client

	mu     sync.Mutex
	closed bool
}

var _ Source = (*HTTPSource)(nil)

// NewHTTPSource returns a source for the object at url. A nil client
// selects http.DefaultClient.
func NewHTTPSource(url string, client *http.Client) *HTTPSource {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPSource{url: url, client: client}
}

func (s *HTTPSource) guard() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSourceClosed
	}
	return nil
}

// ReadAt implements Source with a ranged GET.
func (s *HTTPSource) ReadAt(p []byte, off int64) (int, error) {
	if err := s.guard(); err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	req, err := http.NewRequest(http.MethodGet, s.url, nil)
	if err != nil {
		return 0, fmt.Errorf("http source: %w", err)
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+int64(len(p))-1))
	resp, err := s.client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("http source: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusPartialContent, http.StatusOK:
	case http.StatusRequestedRangeNotSatisfiable:
		return 0, io.EOF
	case http.StatusNotFound:
		return 0, fmt.Errorf("http source: %s: object not found", s.url)
	default:
		return 0, fmt.Errorf("http source: %s: %s", s.url, resp.Status)
	}
	var total int
	if resp.StatusCode == http.StatusOK {
		// The server ignored the Range header: skip to the offset.
		if _, err := io.CopyN(io.Discard, resp.Body, off); err != nil {
			if errors.Is(err, io.EOF) {
				return 0, io.EOF
			}
			return 0, fmt.Errorf("http source: skip to offset: %w", err)
		}
	}
	for total < len(p) {
		n, rerr := resp.Body.Read(p[total:])
		total += n
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				if total < len(p) {
					return total, io.EOF
				}
				return total, nil
			}
			return total, fmt.Errorf("http source: body: %w", rerr)
		}
	}
	return total, nil
}

// Size implements Source with a HEAD request.
func (s *HTTPSource) Size() (int64, error) {
	if err := s.guard(); err != nil {
		return 0, err
	}
	resp, err := s.client.Head(s.url)
	if err != nil {
		return 0, fmt.Errorf("http source: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("http source: %s: %s", s.url, resp.Status)
	}
	if resp.ContentLength < 0 {
		return 0, fmt.Errorf("http source: %s: no content length", s.url)
	}
	return resp.ContentLength, nil
}

// readAll fetches the entire current object.
func (s *HTTPSource) readAll() ([]byte, error) {
	resp, err := s.client.Get(s.url)
	if err != nil {
		return nil, fmt.Errorf("http source: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
		return nil, fmt.Errorf("http source: %s: %s", s.url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// put replaces the object.
func (s *HTTPSource) put(data []byte) error {
	req, err := http.NewRequest(http.MethodPut, s.url, strings.NewReader(string(data)))
	if err != nil {
		return fmt.Errorf("http source: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("http source: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated &&
		resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("http source: PUT %s: %s", s.url, resp.Status)
	}
	return nil
}

// WriteAt implements Source as read-modify-write PUT (HTTP has no ranged
// write).
func (s *HTTPSource) WriteAt(p []byte, off int64) (int, error) {
	if err := s.guard(); err != nil {
		return 0, err
	}
	cur, err := s.readAll()
	if err != nil {
		return 0, err
	}
	end := off + int64(len(p))
	if end > int64(len(cur)) {
		grown := make([]byte, end)
		copy(grown, cur)
		cur = grown
	}
	copy(cur[off:end], p)
	if err := s.put(cur); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Truncate implements Source.
func (s *HTTPSource) Truncate(n int64) error {
	if err := s.guard(); err != nil {
		return err
	}
	cur, err := s.readAll()
	if err != nil {
		return err
	}
	if n <= int64(len(cur)) {
		cur = cur[:n]
	} else {
		grown := make([]byte, n)
		copy(grown, cur)
		cur = grown
	}
	return s.put(cur)
}

// Close implements Source.
func (s *HTTPSource) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// ObjectServer is an http.Handler storing named objects, supporting GET
// (with single byte ranges), HEAD, PUT, and DELETE — enough HTTP for an
// active file to proxy "web" content.
type ObjectServer struct {
	mu      sync.Mutex
	objects map[string][]byte
}

var _ http.Handler = (*ObjectServer)(nil)

// NewObjectServer returns an empty object store handler.
func NewObjectServer() *ObjectServer {
	return &ObjectServer{objects: make(map[string][]byte)}
}

// Put seeds or replaces an object (the path must begin with "/").
func (o *ObjectServer) Put(path string, data []byte) {
	copied := make([]byte, len(data))
	copy(copied, data)
	o.mu.Lock()
	defer o.mu.Unlock()
	o.objects[path] = copied
}

// Get returns a copy of the object at path.
func (o *ObjectServer) Get(path string) ([]byte, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	data, ok := o.objects[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// ServeHTTP implements http.Handler.
func (o *ObjectServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		o.mu.Lock()
		data, ok := o.objects[r.URL.Path]
		o.mu.Unlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		if rng := r.Header.Get("Range"); rng != "" && r.Method == http.MethodGet {
			start, end, ok := parseRange(rng, int64(len(data)))
			if !ok {
				w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", len(data)))
				w.WriteHeader(http.StatusRequestedRangeNotSatisfiable)
				return
			}
			w.Header().Set("Content-Range",
				fmt.Sprintf("bytes %d-%d/%d", start, end, len(data)))
			w.Header().Set("Content-Length", strconv.FormatInt(end-start+1, 10))
			w.WriteHeader(http.StatusPartialContent)
			w.Write(data[start : end+1])
			return
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		if r.Method == http.MethodGet {
			w.Write(data)
		}

	case http.MethodPut:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, "read body", http.StatusBadRequest)
			return
		}
		o.mu.Lock()
		o.objects[r.URL.Path] = body
		o.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)

	case http.MethodDelete:
		o.mu.Lock()
		delete(o.objects, r.URL.Path)
		o.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)

	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// parseRange parses a single "bytes=a-b" range against size.
func parseRange(header string, size int64) (start, end int64, ok bool) {
	spec, found := strings.CutPrefix(header, "bytes=")
	if !found || strings.Contains(spec, ",") {
		return 0, 0, false
	}
	startStr, endStr, found := strings.Cut(spec, "-")
	if !found {
		return 0, 0, false
	}
	start, err := strconv.ParseInt(startStr, 10, 64)
	if err != nil || start < 0 || start >= size {
		return 0, 0, false
	}
	if endStr == "" {
		return start, size - 1, true
	}
	end, err = strconv.ParseInt(endStr, 10, 64)
	if err != nil || end < start {
		return 0, 0, false
	}
	if end >= size {
		end = size - 1
	}
	return start, end, true
}
