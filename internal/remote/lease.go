package remote

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRevokeTimeout bounds how long a write waits for lease holders to
// acknowledge a revoke before their connections are forcibly closed. It is
// the lease protocol's liveness backstop: a client that cannot ack within
// this window loses its session (and with it any claim to cached validity)
// rather than stalling writers forever.
const DefaultRevokeTimeout = time.Second

// leasePoll is the granularity of the table's wait loops — the same
// sleep-poll idiom the server's drain loop uses, cheap at the sub-ms
// timescales the protocol operates on.
const leasePoll = 100 * time.Microsecond

// LeaseStats counts lease-protocol activity on one server.
type LeaseStats struct {
	Grants         uint64 // leases issued (including re-grants)
	Rounds         uint64 // write rounds that revoked at least one holder
	Revokes        uint64 // revoke pushes sent
	RevokeTimeouts uint64 // holders evicted for not acking in time
}

// leaseTable is the server half of the read-lease protocol. Each object has
// a monotonically increasing lease EPOCH; granting a lease hands the current
// epoch to the client, which tags its cached blocks with it. Before a
// conflicting write applies, the table runs a revoke ROUND: the epoch is
// bumped, every holder is pushed a revoke frame carrying the new epoch, and
// the write proceeds only once every holder has acked (having invalidated
// its cache) — or been evicted at the revoke timeout, losing its connection
// and therefore its session. Grants issued while a round is in progress wait
// until it completes, so a freshly granted lease always observes the write's
// bytes.
//
// Holders are keyed by connection: a connection binds one object, acks and
// disconnections are attributed to it, and a closed connection's lease
// lapses immediately (its client can no longer serve reads without redialing
// and re-leasing).
type leaseTable struct {
	timeout time.Duration

	mu     sync.Mutex
	objs   map[string]*objLease
	byConn map[any]*connLease

	grants   atomic.Uint64
	rounds   atomic.Uint64
	revokes  atomic.Uint64
	timeouts atomic.Uint64
}

type objLease struct {
	name    string
	epoch   uint64
	writing bool // a revoke/apply round is in progress; grants wait
	holders map[any]*connLease
}

// connLease is one connection's lease on one object.
type connLease struct {
	obj   *objLease
	push  func(epoch uint64) // enqueue a revoke frame on the holder's connection
	kill  func()             // force-close the holder's connection (timeout eviction)
	acked uint64             // highest epoch the holder has acknowledged
}

func newLeaseTable(timeout time.Duration) *leaseTable {
	if timeout <= 0 {
		timeout = DefaultRevokeTimeout
	}
	return &leaseTable{
		timeout: timeout,
		objs:    make(map[string]*objLease),
		byConn:  make(map[any]*connLease),
	}
}

func (t *leaseTable) stats() LeaseStats {
	return LeaseStats{
		Grants:         t.grants.Load(),
		Rounds:         t.rounds.Load(),
		Revokes:        t.revokes.Load(),
		RevokeTimeouts: t.timeouts.Load(),
	}
}

func (t *leaseTable) obj(name string) *objLease {
	o := t.objs[name]
	if o == nil {
		o = &objLease{name: name, epoch: 1, holders: make(map[any]*connLease)}
		t.objs[name] = o
	}
	return o
}

// grant issues (or refreshes) conn's lease on name, returning the lease
// epoch. It blocks while a write round is in progress, so the returned epoch
// is never about to be revoked by an already-committed write. push enqueues
// a revoke frame on the connection; kill force-closes it.
func (t *leaseTable) grant(conn any, name string, push func(uint64), kill func()) uint64 {
	t.mu.Lock()
	o := t.obj(name)
	for o.writing {
		t.mu.Unlock()
		time.Sleep(leasePoll)
		t.mu.Lock()
	}
	if prev := t.byConn[conn]; prev != nil && prev.obj != o {
		delete(prev.obj.holders, conn) // connection rebound to another object
	}
	h := o.holders[conn]
	if h == nil {
		h = &connLease{obj: o, push: push, kill: kill}
		o.holders[conn] = h
		t.byConn[conn] = h
	}
	h.acked = o.epoch // holding the current epoch implies nothing to revoke
	epoch := o.epoch
	t.mu.Unlock()
	t.grants.Add(1)
	return epoch
}

// ack records conn's acknowledgement of a revoke up to epoch.
func (t *leaseTable) ack(conn any, epoch uint64) {
	t.mu.Lock()
	if h := t.byConn[conn]; h != nil && epoch > h.acked {
		h.acked = epoch
	}
	t.mu.Unlock()
}

// dropConn releases conn's lease, if any. Called when a connection closes
// (its client must redial and re-lease, so the lease lapses with it) and on
// rebind.
func (t *leaseTable) dropConn(conn any) {
	t.mu.Lock()
	if h := t.byConn[conn]; h != nil {
		delete(h.obj.holders, conn)
		delete(t.byConn, conn)
	}
	t.mu.Unlock()
}

// beginWrite opens a write round on name: it serializes with other rounds,
// bumps the epoch, pushes revokes to any holders, and waits for every holder
// to ack or be evicted at the timeout. The returned func closes the round;
// the caller applies the write (and any replica forwarding) BETWEEN the two,
// so leases granted after the round observe the new bytes.
func (t *leaseTable) beginWrite(name string) func() {
	t.mu.Lock()
	o := t.obj(name)
	for o.writing {
		t.mu.Unlock()
		time.Sleep(leasePoll)
		t.mu.Lock()
	}
	o.writing = true

	// The epoch advances on EVERY write, holders or not. A client whose lease
	// lapsed (its connection dropped) still holds blocks tagged with the old
	// epoch; if a write landed while it was gone, the epoch it re-leases at
	// must be ahead of those tags or they would validate again and serve the
	// pre-write bytes forever. Revoke work is still skipped when nobody holds
	// a lease.
	o.epoch++
	target := o.epoch

	if len(o.holders) > 0 {
		pushes := make([]func(uint64), 0, len(o.holders))
		for _, h := range o.holders {
			if h.acked < target {
				pushes = append(pushes, h.push)
			}
		}
		t.mu.Unlock()
		t.rounds.Add(1)
		for _, p := range pushes {
			p(target)
			t.revokes.Add(1)
		}

		deadline := time.Now().Add(t.timeout)
		t.mu.Lock()
		for {
			settled := true
			for _, h := range o.holders {
				if h.acked < target {
					settled = false
					break
				}
			}
			if settled {
				break
			}
			if time.Now().After(deadline) {
				// Liveness backstop: evict unresponsive holders. Closing the
				// connection invalidates the client's session — it cannot
				// keep serving cached blocks without redialing and
				// re-leasing, which hands it the post-write epoch.
				for conn, h := range o.holders {
					if h.acked < target {
						delete(o.holders, conn)
						delete(t.byConn, conn)
						t.timeouts.Add(1)
						go h.kill() // conn close; async, the conn teardown re-calls dropConn harmlessly
					}
				}
				break
			}
			t.mu.Unlock()
			time.Sleep(leasePoll)
			t.mu.Lock()
		}
	}
	t.mu.Unlock()

	return func() {
		t.mu.Lock()
		o.writing = false
		t.mu.Unlock()
	}
}
