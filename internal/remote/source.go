// Package remote implements the distributed information sources active files
// aggregate from and distribute to. The paper's evaluation runs its sentinel
// against "a remote service" on a cluster; here the services are real TCP
// servers (block file store, stock quotes, POP-style mail drops, a delivery
// sink) so the remote critical path (Figure 5, path 1) crosses a genuine
// network stack, albeit loopback.
package remote

import (
	"errors"
	"io"
	"sync"
)

// Source is a random-access remote object, the sentinel's view of one
// information source.
type Source interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the object's current length.
	Size() (int64, error)
	// Truncate sets the object's length.
	Truncate(n int64) error
	// Close releases the connection to the source.
	Close() error
}

// ErrSourceClosed is returned by operations on a closed source.
var ErrSourceClosed = errors.New("remote: source closed")

// MemSource is an in-process Source backed by a byte slice. It stands in for
// a remote object in unit tests and implements the sentinel's in-memory
// cache (Figure 5, path 3) when used as scratch storage. Reads share an
// RLock so concurrent FileServer workers serving one hot object do not
// serialize on the store.
type MemSource struct {
	mu     sync.RWMutex
	data   []byte
	closed bool
}

var _ Source = (*MemSource)(nil)

// NewMemSource returns a MemSource seeded with a copy of data.
func NewMemSource(data []byte) *MemSource {
	buf := make([]byte, len(data))
	copy(buf, data)
	return &MemSource{data: buf}
}

// ReadAt implements Source.
func (m *MemSource) ReadAt(p []byte, off int64) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return 0, ErrSourceClosed
	}
	if off < 0 {
		return 0, errors.New("remote: negative offset")
	}
	// Zero-length reads succeed at any offset, matching os.File: a probe at
	// EOF is not an EOF.
	if len(p) == 0 {
		return 0, nil
	}
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements Source, zero-filling any gap past the current end.
func (m *MemSource) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrSourceClosed
	}
	if off < 0 {
		return 0, errors.New("remote: negative offset")
	}
	end := off + int64(len(p))
	if end > int64(len(m.data)) {
		grown := make([]byte, end)
		copy(grown, m.data)
		m.data = grown
	}
	copy(m.data[off:end], p)
	return len(p), nil
}

// Size implements Source.
func (m *MemSource) Size() (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return 0, ErrSourceClosed
	}
	return int64(len(m.data)), nil
}

// Truncate implements Source.
func (m *MemSource) Truncate(n int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrSourceClosed
	}
	if n < 0 {
		return errors.New("remote: negative length")
	}
	if n <= int64(len(m.data)) {
		m.data = m.data[:n]
		return nil
	}
	grown := make([]byte, n)
	copy(grown, m.data)
	m.data = grown
	return nil
}

// Close implements Source.
func (m *MemSource) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// Bytes returns a copy of the current contents.
func (m *MemSource) Bytes() []byte {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]byte, len(m.data))
	copy(out, m.data)
	return out
}
