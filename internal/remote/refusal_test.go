package remote

import (
	"errors"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/faultinject"
	"repro/internal/wire"
)

// TestRedialRefusalSurfacesImmediately: when a reconnect's OpOpen is answered
// with a typed policy refusal (here: the daemon is draining), the client must
// report it at once — a deliberate admission decision is not a transport
// fault, and burning the retry/backoff budget on it (or, one level up, failing
// over to a replica) would turn admission control into a retry storm.
func TestRedialRefusalSurfacesImmediately(t *testing.T) {
	faultinject.LeakCheck(t)
	srv, addr := startServer(t)
	srv.SetRegistry(daemon.NewRegistry(daemon.Quotas{}))
	srv.Put("obj", []byte("remote contents"))

	proxy := faultinject.NewProxy(addr)
	paddr, err := proxy.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Backoff is deliberately huge: if the refusal were treated as retryable,
	// the call would visibly stall instead of returning.
	c, err := DialWith(paddr, "obj", DialOptions{
		MaxRetries:  5,
		BackoffBase: 500 * time.Millisecond,
		BackoffMax:  2 * time.Second,
		OpTimeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	buf := make([]byte, 6)
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatalf("healthy read: %v", err)
	}

	// Start draining, then cut the live session: the client's next operation
	// redials and its OpOpen is refused with wire.ErrShuttingDown. This first
	// read is untimed — the torn connection is a genuine transport fault, and
	// one backoff before the redial that discovers the refusal is legitimate.
	srv.Registry().Drain(0)
	proxy.DropActive()
	if _, rerr := c.ReadAt(buf, 0); !errors.Is(rerr, wire.ErrShuttingDown) {
		t.Fatalf("read during drain = %v, want wire.ErrShuttingDown", rerr)
	}

	// From here the refusal is known: every further call must surface it at
	// once, without spending the (deliberately huge) retry/backoff budget.
	start := time.Now()
	_, rerr := c.ReadAt(buf, 0)
	waited := time.Since(start)
	if !errors.Is(rerr, wire.ErrShuttingDown) {
		t.Fatalf("read during drain = %v, want wire.ErrShuttingDown", rerr)
	}
	if waited >= 400*time.Millisecond {
		t.Fatalf("refusal took %v to surface — it sat in the retry loop", waited)
	}
	if !IsRefusal(rerr) {
		t.Fatalf("IsRefusal(%v) = false", rerr)
	}
}

// TestIsRefusalClassification pins which errors count as policy refusals.
func TestIsRefusalClassification(t *testing.T) {
	for _, err := range []error{wire.ErrQuotaExceeded, wire.ErrOverloaded, wire.ErrShuttingDown} {
		if !IsRefusal(err) {
			t.Errorf("IsRefusal(%v) = false, want true", err)
		}
	}
	for _, err := range []error{nil, wire.ErrNotFound, wire.ErrBusy, errors.New("connection reset")} {
		if IsRefusal(err) {
			t.Errorf("IsRefusal(%v) = true, want false", err)
		}
	}
}
