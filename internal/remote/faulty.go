package remote

import (
	"sync"
	"time"

	"repro/internal/faultinject"
)

// SlowSource wraps a Source, delaying every operation by a fixed latency.
// It models a distant source without needing a real WAN.
type SlowSource struct {
	inner Source
	delay time.Duration
}

var _ Source = (*SlowSource)(nil)

// NewSlowSource wraps inner with a per-operation delay.
func NewSlowSource(inner Source, delay time.Duration) *SlowSource {
	return &SlowSource{inner: inner, delay: delay}
}

// ReadAt implements Source.
func (s *SlowSource) ReadAt(p []byte, off int64) (int, error) {
	time.Sleep(s.delay)
	return s.inner.ReadAt(p, off)
}

// WriteAt implements Source.
func (s *SlowSource) WriteAt(p []byte, off int64) (int, error) {
	time.Sleep(s.delay)
	return s.inner.WriteAt(p, off)
}

// Size implements Source.
func (s *SlowSource) Size() (int64, error) {
	time.Sleep(s.delay)
	return s.inner.Size()
}

// Truncate implements Source.
func (s *SlowSource) Truncate(n int64) error {
	time.Sleep(s.delay)
	return s.inner.Truncate(n)
}

// Close implements Source.
func (s *SlowSource) Close() error { return s.inner.Close() }

// FlakySource wraps a Source and fails every operation while tripped. It
// models a source that becomes unreachable mid-session.
type FlakySource struct {
	inner Source

	mu      sync.Mutex
	tripped error
}

var _ Source = (*FlakySource)(nil)

// NewFlakySource wraps inner; it behaves transparently until Trip is called.
func NewFlakySource(inner Source) *FlakySource {
	return &FlakySource{inner: inner}
}

// Trip makes all subsequent operations fail with err; Trip(nil) heals it.
func (s *FlakySource) Trip(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tripped = err
}

func (s *FlakySource) fault() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tripped
}

// ReadAt implements Source.
func (s *FlakySource) ReadAt(p []byte, off int64) (int, error) {
	if err := s.fault(); err != nil {
		return 0, err
	}
	return s.inner.ReadAt(p, off)
}

// WriteAt implements Source.
func (s *FlakySource) WriteAt(p []byte, off int64) (int, error) {
	if err := s.fault(); err != nil {
		return 0, err
	}
	return s.inner.WriteAt(p, off)
}

// Size implements Source.
func (s *FlakySource) Size() (int64, error) {
	if err := s.fault(); err != nil {
		return 0, err
	}
	return s.inner.Size()
}

// Truncate implements Source.
func (s *FlakySource) Truncate(n int64) error {
	if err := s.fault(); err != nil {
		return err
	}
	return s.inner.Truncate(n)
}

// Close implements Source.
func (s *FlakySource) Close() error { return s.inner.Close() }

// ChaosSource wraps a Source, failing each operation independently with a
// configured probability — a steady drizzle of faults rather than
// FlakySource's hard outage. Its randomness is seeded, so a chaos run is
// reproducible. The rolls come from faultinject.Injector, the same engine
// behind the errorfs backend, so operation-level fault injection has one
// implementation.
type ChaosSource struct {
	inner Source
	inj   *faultinject.Injector
}

var _ Source = (*ChaosSource)(nil)

// NewChaosSource wraps inner; each operation fails with probability rate
// (clamped to [0,1]) returning fault (faultinject.ErrInjected when nil).
// Same seed, same fault schedule.
func NewChaosSource(inner Source, rate float64, fault error, seed int64) *ChaosSource {
	return &ChaosSource{inner: inner, inj: faultinject.NewInjector(rate, fault, seed, 0)}
}

// Injected reports how many operations have been failed so far.
func (s *ChaosSource) Injected() uint64 { return s.inj.Injected() }

func (s *ChaosSource) roll() error { return s.inj.Roll() }

// ReadAt implements Source.
func (s *ChaosSource) ReadAt(p []byte, off int64) (int, error) {
	if err := s.roll(); err != nil {
		return 0, err
	}
	return s.inner.ReadAt(p, off)
}

// WriteAt implements Source.
func (s *ChaosSource) WriteAt(p []byte, off int64) (int, error) {
	if err := s.roll(); err != nil {
		return 0, err
	}
	return s.inner.WriteAt(p, off)
}

// Size implements Source.
func (s *ChaosSource) Size() (int64, error) {
	if err := s.roll(); err != nil {
		return 0, err
	}
	return s.inner.Size()
}

// Truncate implements Source.
func (s *ChaosSource) Truncate(n int64) error {
	if err := s.roll(); err != nil {
		return err
	}
	return s.inner.Truncate(n)
}

// Close implements Source.
func (s *ChaosSource) Close() error { return s.inner.Close() }
