package remote

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Quote is one instrument's latest price, in cents to avoid float drift.
type Quote struct {
	Symbol string
	Cents  int64
}

// QuoteServer is a TCP stock-quote feed, the remote half of the paper's §3
// example of "an active file that reflects the latest stock quotes
// (downloaded by the sentinel from a server) every time the file is opened".
// The protocol is line-oriented: a client sends "LIST", the server answers
// one "SYMBOL CENTS" line per instrument followed by ".".
type QuoteServer struct {
	mu     sync.Mutex
	quotes map[string]int64
	rng    uint64
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
}

// NewQuoteServer returns a feed seeded with the given quotes.
func NewQuoteServer(initial []Quote) *QuoteServer {
	s := &QuoteServer{
		quotes: make(map[string]int64, len(initial)),
		rng:    0x9e3779b97f4a7c15,
		conns:  make(map[net.Conn]struct{}),
	}
	for _, q := range initial {
		s.quotes[q.Symbol] = q.Cents
	}
	return s
}

// SetQuote updates one instrument.
func (s *QuoteServer) SetQuote(symbol string, cents int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quotes[symbol] = cents
}

// Tick applies a deterministic pseudo-random walk to every price, simulating
// the dynamically changing source the paper motivates.
func (s *QuoteServer) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	symbols := make([]string, 0, len(s.quotes))
	for sym := range s.quotes {
		symbols = append(symbols, sym)
	}
	sort.Strings(symbols)
	for _, sym := range symbols {
		s.rng ^= s.rng << 13
		s.rng ^= s.rng >> 7
		s.rng ^= s.rng << 17
		delta := int64(s.rng%201) - 100 // -100..+100 cents
		next := s.quotes[sym] + delta
		if next < 1 {
			next = 1
		}
		s.quotes[sym] = next
	}
}

// Snapshot returns the current quotes sorted by symbol.
func (s *QuoteServer) Snapshot() []Quote {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Quote, 0, len(s.quotes))
	for sym, cents := range s.quotes {
		out = append(out, Quote{Symbol: sym, Cents: cents})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Symbol < out[j].Symbol })
	return out
}

// Start begins serving on addr and returns the bound address.
func (s *QuoteServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("quote server listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the server and all connections.
func (s *QuoteServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *QuoteServer) serveConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		cmd := strings.TrimSpace(sc.Text())
		switch {
		case cmd == "LIST":
			for _, q := range s.Snapshot() {
				fmt.Fprintf(w, "%s %d\n", q.Symbol, q.Cents)
			}
			fmt.Fprintln(w, ".")
		case cmd == "TICK":
			s.Tick()
			fmt.Fprintln(w, "+OK")
		case strings.HasPrefix(cmd, "GET "):
			sym := strings.TrimSpace(cmd[4:])
			s.mu.Lock()
			cents, ok := s.quotes[sym]
			s.mu.Unlock()
			if !ok {
				fmt.Fprintln(w, "-ERR unknown symbol")
			} else {
				fmt.Fprintf(w, "%s %d\n", sym, cents)
			}
		default:
			fmt.Fprintln(w, "-ERR unknown command")
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// FetchQuotes connects to a quote server and retrieves the full list.
func FetchQuotes(addr string) ([]Quote, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial quote server %s: %w", addr, err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, "LIST"); err != nil {
		return nil, fmt.Errorf("send LIST: %w", err)
	}
	sc := bufio.NewScanner(conn)
	var out []Quote
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "." {
			return out, nil
		}
		sym, centsStr, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("quote server: bad line %q", line)
		}
		cents, err := strconv.ParseInt(centsStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("quote server: bad price in %q", line)
		}
		out = append(out, Quote{Symbol: sym, Cents: cents})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("quote stream: %w", err)
	}
	return nil, errors.New("quote server: stream ended before terminator")
}

// FormatQuotes renders quotes as the text the stock-ticker active file
// presents: one "SYMBOL<tab>DOLLARS.CENTS" line each.
func FormatQuotes(quotes []Quote) []byte {
	var b strings.Builder
	for _, q := range quotes {
		fmt.Fprintf(&b, "%s\t%d.%02d\n", q.Symbol, q.Cents/100, q.Cents%100)
	}
	return []byte(b.String())
}
