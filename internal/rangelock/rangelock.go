// Package rangelock implements shared byte-range locking for active files.
// The paper requires it twice: §2.2 — "if multiple user processes open the
// same active file, multiple sentinels are created, which synchronize
// amongst themselves" — and §3's log file "that accepts log entries from many
// processes [and] may want to enforce some form of locking". Each open
// session holds its own sentinel; the sentinels of one active file
// synchronize through a lock table shared per manifest path.
package rangelock

import (
	"errors"
	"fmt"
	"sync"
)

// Locking errors.
var (
	// ErrConflict reports an overlap with a range held by another session.
	ErrConflict = errors.New("rangelock: range locked by another session")
	// ErrNotHeld reports an unlock of a range the session does not hold.
	ErrNotHeld = errors.New("rangelock: range not held")
	// ErrBadRange reports a non-positive length or negative offset.
	ErrBadRange = errors.New("rangelock: invalid range")
)

type span struct {
	off, n int64
	owner  *Session
}

func (s span) end() int64 { return s.off + s.n }

func (s span) overlaps(off, n int64) bool {
	return off < s.end() && s.off < off+n
}

// Table is the lock state of one active file, shared by all of its
// sentinels.
type Table struct {
	mu    sync.Mutex
	spans []span
}

// NewTable returns an empty lock table.
func NewTable() *Table {
	return &Table{}
}

// Session identifies one lock holder (one open sentinel session).
type Session struct {
	table *Table
}

// NewSession returns a session against t.
func (t *Table) NewSession() *Session {
	return &Session{table: t}
}

// Lock acquires [off, off+n) for the session. Ranges a session already
// holds may be re-locked (the request is idempotent per exact range);
// overlap with another session fails with ErrConflict — callers decide
// whether to retry.
func (s *Session) Lock(off, n int64) error {
	if off < 0 || n <= 0 {
		return fmt.Errorf("%w: off=%d n=%d", ErrBadRange, off, n)
	}
	t := s.table
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sp := range t.spans {
		if !sp.overlaps(off, n) {
			continue
		}
		if sp.owner == s && sp.off == off && sp.n == n {
			return nil // exact re-lock is idempotent
		}
		if sp.owner != s {
			return fmt.Errorf("%w: [%d,%d) overlaps held [%d,%d)",
				ErrConflict, off, off+n, sp.off, sp.end())
		}
		// Overlapping (but not identical) self-lock: treat as conflict to
		// keep accounting unambiguous.
		return fmt.Errorf("%w: [%d,%d) overlaps own [%d,%d)",
			ErrConflict, off, off+n, sp.off, sp.end())
	}
	t.spans = append(t.spans, span{off: off, n: n, owner: s})
	return nil
}

// Unlock releases exactly the range [off, off+n) previously locked by the
// session.
func (s *Session) Unlock(off, n int64) error {
	if off < 0 || n <= 0 {
		return fmt.Errorf("%w: off=%d n=%d", ErrBadRange, off, n)
	}
	t := s.table
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, sp := range t.spans {
		if sp.owner == s && sp.off == off && sp.n == n {
			t.spans = append(t.spans[:i], t.spans[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: [%d,%d)", ErrNotHeld, off, off+n)
}

// ReleaseAll drops every range the session holds (session close).
func (s *Session) ReleaseAll() {
	t := s.table
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.spans[:0]
	for _, sp := range t.spans {
		if sp.owner != s {
			kept = append(kept, sp)
		}
	}
	t.spans = kept
}

// Holds reports whether the session holds a lock covering [off, off+n).
func (s *Session) Holds(off, n int64) bool {
	t := s.table
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sp := range t.spans {
		if sp.owner == s && sp.off <= off && off+n <= sp.end() {
			return true
		}
	}
	return false
}

// Len returns the number of held ranges across all sessions.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Registry hands out the shared Table of each active file, keyed by its
// manifest path, so every sentinel of one file meets the same table.
type Registry struct {
	mu     sync.Mutex
	tables map[string]*Table
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tables: make(map[string]*Table)}
}

// Table returns (creating on first use) the lock table for key.
func (r *Registry) Table(key string) *Table {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tables[key]
	if !ok {
		t = NewTable()
		r.tables[key] = t
	}
	return t
}

// defaultRegistry backs Shared.
var defaultRegistry = NewRegistry()

// Shared returns the process-wide lock table for key.
func Shared(key string) *Table {
	return defaultRegistry.Table(key)
}
