package rangelock

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestLockUnlockBasics(t *testing.T) {
	table := NewTable()
	s := table.NewSession()
	if err := s.Lock(0, 10); err != nil {
		t.Fatal(err)
	}
	if !s.Holds(0, 10) || !s.Holds(2, 3) {
		t.Error("Holds = false for held range")
	}
	if s.Holds(5, 10) {
		t.Error("Holds = true beyond the held range")
	}
	if err := s.Unlock(0, 10); err != nil {
		t.Fatal(err)
	}
	if s.Holds(0, 10) {
		t.Error("Holds = true after unlock")
	}
}

func TestLockConflictBetweenSessions(t *testing.T) {
	table := NewTable()
	a := table.NewSession()
	b := table.NewSession()
	if err := a.Lock(10, 10); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name    string
		off, n  int64
		wantErr error
	}{
		{name: "exact overlap", off: 10, n: 10, wantErr: ErrConflict},
		{name: "left overlap", off: 5, n: 6, wantErr: ErrConflict},
		{name: "right overlap", off: 19, n: 5, wantErr: ErrConflict},
		{name: "containing", off: 0, n: 40, wantErr: ErrConflict},
		{name: "inside", off: 12, n: 2, wantErr: ErrConflict},
		{name: "adjacent left ok", off: 0, n: 10},
		{name: "adjacent right ok", off: 20, n: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := b.Lock(tt.off, tt.n)
			if tt.wantErr == nil {
				if err != nil {
					t.Errorf("Lock = %v, want nil", err)
				}
				b.Unlock(tt.off, tt.n)
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("Lock err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestExactRelockIdempotent(t *testing.T) {
	table := NewTable()
	s := table.NewSession()
	if err := s.Lock(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Lock(0, 4); err != nil {
		t.Errorf("exact re-lock err = %v", err)
	}
	if table.Len() != 1 {
		t.Errorf("Len = %d, want 1", table.Len())
	}
	// A different overlapping self-range is rejected, not merged.
	if err := s.Lock(2, 4); !errors.Is(err, ErrConflict) {
		t.Errorf("overlapping self-lock err = %v, want ErrConflict", err)
	}
}

func TestUnlockErrors(t *testing.T) {
	table := NewTable()
	a := table.NewSession()
	b := table.NewSession()
	a.Lock(0, 4)
	if err := b.Unlock(0, 4); !errors.Is(err, ErrNotHeld) {
		t.Errorf("foreign unlock err = %v, want ErrNotHeld", err)
	}
	if err := a.Unlock(0, 2); !errors.Is(err, ErrNotHeld) {
		t.Errorf("partial unlock err = %v, want ErrNotHeld", err)
	}
	if err := a.Unlock(9, 1); !errors.Is(err, ErrNotHeld) {
		t.Errorf("unheld unlock err = %v, want ErrNotHeld", err)
	}
}

func TestBadRanges(t *testing.T) {
	s := NewTable().NewSession()
	for _, give := range [][2]int64{{-1, 4}, {0, 0}, {0, -2}} {
		if err := s.Lock(give[0], give[1]); !errors.Is(err, ErrBadRange) {
			t.Errorf("Lock(%d,%d) err = %v, want ErrBadRange", give[0], give[1], err)
		}
		if err := s.Unlock(give[0], give[1]); !errors.Is(err, ErrBadRange) {
			t.Errorf("Unlock(%d,%d) err = %v, want ErrBadRange", give[0], give[1], err)
		}
	}
}

func TestReleaseAllDropsOnlyOwnLocks(t *testing.T) {
	table := NewTable()
	a := table.NewSession()
	b := table.NewSession()
	a.Lock(0, 4)
	a.Lock(8, 4)
	b.Lock(20, 4)
	a.ReleaseAll()
	if table.Len() != 1 {
		t.Errorf("Len = %d, want only b's lock", table.Len())
	}
	if err := b.Lock(0, 4); err != nil {
		t.Errorf("range not freed by ReleaseAll: %v", err)
	}
}

func TestRegistrySharing(t *testing.T) {
	reg := NewRegistry()
	if reg.Table("x") != reg.Table("x") {
		t.Error("same key yields different tables")
	}
	if reg.Table("x") == reg.Table("y") {
		t.Error("different keys share a table")
	}
	if Shared("same") != Shared("same") {
		t.Error("Shared not stable")
	}
}

func TestMutualExclusionUnderConcurrency(t *testing.T) {
	// N goroutines contend for the same range; at most one may hold it at a
	// time, verified with a counter only mutated inside the lock.
	table := NewTable()
	var (
		inside  int
		maxSeen int
		mu      sync.Mutex
		wg      sync.WaitGroup
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := table.NewSession()
			for i := 0; i < 200; i++ {
				if err := s.Lock(100, 50); err != nil {
					continue // contended; try again
				}
				mu.Lock()
				inside++
				if inside > maxSeen {
					maxSeen = inside
				}
				mu.Unlock()

				mu.Lock()
				inside--
				mu.Unlock()
				if err := s.Unlock(100, 50); err != nil {
					t.Errorf("Unlock: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if maxSeen > 1 {
		t.Errorf("max simultaneous holders = %d, want 1", maxSeen)
	}
}

func TestNoOverlapInvariantProperty(t *testing.T) {
	// After any sequence of lock/unlock attempts by several sessions, no
	// two held spans overlap.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		table := NewTable()
		sessions := []*Session{table.NewSession(), table.NewSession(), table.NewSession()}
		type held struct{ off, n int64 }
		holdings := make(map[*Session][]held)
		for i := 0; i < 200; i++ {
			s := sessions[rng.Intn(len(sessions))]
			off := int64(rng.Intn(100))
			n := int64(rng.Intn(20) + 1)
			if rng.Intn(2) == 0 {
				dup := false
				for _, h := range holdings[s] {
					if h.off == off && h.n == n {
						dup = true // exact re-lock is idempotent; skip
						break
					}
				}
				if !dup && s.Lock(off, n) == nil {
					holdings[s] = append(holdings[s], held{off, n})
				}
			} else if hs := holdings[s]; len(hs) > 0 {
				idx := rng.Intn(len(hs))
				if s.Unlock(hs[idx].off, hs[idx].n) == nil {
					holdings[s] = append(hs[:idx], hs[idx+1:]...)
				}
			}
		}
		// Verify the invariant against the table's own accounting.
		var all []held
		for _, hs := range holdings {
			all = append(all, hs...)
		}
		if len(all) != table.Len() {
			return false
		}
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				a, b := all[i], all[j]
				if a.off < b.off+b.n && b.off < a.off+a.n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestErrorMessagesName(t *testing.T) {
	table := NewTable()
	a := table.NewSession()
	b := table.NewSession()
	a.Lock(0, 10)
	err := b.Lock(5, 10)
	if err == nil {
		t.Fatal("expected conflict")
	}
	want := fmt.Sprintf("%v", ErrConflict)
	if got := err.Error(); len(got) <= len(want) {
		t.Errorf("conflict error lacks range detail: %q", got)
	}
}
