package core

import (
	"context"
	"errors"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/vfs"
	"repro/internal/wire"
)

// newTestProcCtl spawns a real procctl sentinel subprocess for a fresh
// passthrough active file (the test binary re-executes itself as the child;
// see TestMain in core_test.go).
func newTestProcCtl(t *testing.T, params map[string]string) *procCtlTransport {
	t.Helper()
	path := filepath.Join(t.TempDir(), "file.af")
	if err := vfs.Create(path, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "memory",
		Params:  params,
	}); err != nil {
		t.Fatalf("vfs.Create: %v", err)
	}
	m, err := vfs.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := newProcCtlTransport(path, m)
	if err != nil {
		t.Fatalf("newProcCtlTransport: %v", err)
	}
	return tr
}

// TestProcCtlSentinelDeathReleasesExchanges kills the sentinel subprocess
// mid-session: every concurrent exchange must return an error promptly —
// no indefinite block — and the transport must still close cleanly.
func TestProcCtlSentinelDeathReleasesExchanges(t *testing.T) {
	tr := newTestProcCtl(t, map[string]string{"readahead": "false"})

	if _, err := tr.size(); err != nil {
		t.Fatalf("healthy size: %v", err)
	}

	if err := tr.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill sentinel: %v", err)
	}

	// Ops issued around the death window must all fail, and fast. Some race
	// the pipe EOF, some land after the monitor poisoned the mux; none may
	// hang.
	const callers = 4
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			_, err := tr.size()
			errs <- err
		}()
	}
	deadline := time.After(5 * time.Second)
	for i := 0; i < callers; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Error("exchange succeeded against a dead sentinel")
			}
		case <-deadline:
			t.Fatal("exchange blocked after sentinel death: waiter never released")
		}
	}

	// Once the monitor has reaped the death, the error names it.
	waitDeadline := time.Now().Add(5 * time.Second)
	for {
		_, err := tr.size()
		if errors.Is(err, ErrSentinelDied) {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("post-death error never became ErrSentinelDied: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	done := make(chan error, 1)
	go func() { done <- tr.close() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("close hung after sentinel death")
	}
}

// TestProcCtlOpTimeoutOnStalledSentinel stops (SIGSTOP) the sentinel — alive
// but unresponsive, the hung-server case — and verifies the configured
// per-operation deadline bounds the wait, then that the session recovers in
// sync once the sentinel resumes: the stale response is discarded and a
// fresh exchange succeeds.
func TestProcCtlOpTimeoutOnStalledSentinel(t *testing.T) {
	tr := newTestProcCtl(t, map[string]string{
		"readahead": "false",
		"optimeout": "200ms",
	})
	defer tr.close()

	if _, err := tr.size(); err != nil {
		t.Fatalf("healthy size: %v", err)
	}

	if err := tr.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatalf("stop sentinel: %v", err)
	}

	start := time.Now()
	_, err := tr.size()
	waited := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled size err = %v, want DeadlineExceeded", err)
	}
	if waited > 3*time.Second {
		t.Fatalf("deadline took %v to fire; wait effectively unbounded", waited)
	}

	if err := tr.cmd.Process.Signal(syscall.SIGCONT); err != nil {
		t.Fatalf("resume sentinel: %v", err)
	}

	// The resumed sentinel first answers the abandoned exchange; the mux
	// must skip it and deliver the fresh response to the fresh caller.
	recoverDeadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := tr.size(); err == nil {
			break
		}
		if time.Now().After(recoverDeadline) {
			t.Fatal("session never recovered after sentinel resumed")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestOpTimeoutParamRejected pins manifest validation of the deadline knob.
func TestOpTimeoutParamRejected(t *testing.T) {
	for _, bad := range []string{"soon", "-1s"} {
		_, err := opTimeoutParam(vfs.Manifest{Params: map[string]string{"optimeout": bad}})
		if err == nil {
			t.Errorf("optimeout %q accepted", bad)
		}
	}
	d, err := opTimeoutParam(vfs.Manifest{Params: map[string]string{"optimeout": "1500ms"}})
	if err != nil || d != 1500*time.Millisecond {
		t.Errorf("optimeout 1500ms = (%v, %v)", d, err)
	}
}

// TestDispatchContainsHandlerPanic: a panicking program must produce an
// error response (and keep the lock released), not unwind the sentinel.
func TestDispatchContainsHandlerPanic(t *testing.T) {
	d := newDispatcher(&panicHandler{})
	read := wire.Request{Seq: 1, Op: wire.OpRead, N: 4}
	resp, release := d.dispatch(&read)
	release()
	if resp.Status == wire.StatusOK {
		t.Fatal("panicking handler reported success")
	}
	// The dispatcher lock must have been released: a second dispatch (on an
	// op whose handler method does not panic) completes rather than
	// deadlocking behind a leaked lock.
	done := make(chan struct{})
	go func() {
		size := wire.Request{Seq: 2, Op: wire.OpSize}
		resp2, rel2 := d.dispatch(&size)
		rel2()
		if resp2.Status != wire.StatusOK {
			t.Errorf("size after contained panic = %v", resp2.Status)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch deadlocked after handler panic: lock leaked")
	}
}

type panicHandler struct{}

func (panicHandler) ReadAt(p []byte, off int64) (int, error)  { panic("program bug") }
func (panicHandler) WriteAt(p []byte, off int64) (int, error) { panic("program bug") }
func (panicHandler) Size() (int64, error)                     { return 0, nil }
func (panicHandler) Truncate(int64) error                     { return nil }
func (panicHandler) Sync() error                              { return nil }
func (panicHandler) Close() error                             { return nil }
