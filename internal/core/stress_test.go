package core_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/vfs"
)

// TestConcurrentHandleStress hammers ONE handle per strategy from 16
// goroutines mixing positioned I/O, the shared-offset stream API, and Stats
// snapshots. Run it under -race: it exists to prove the concurrent session
// core — offset/close lock split, Seq-correlated transports, dispatcher
// worker pools — is free of data races and cross-client corruption. Each
// client owns a disjoint 256-byte region, so positioned results are exact;
// stream reads share the handle offset and only demand error-free progress.
func TestConcurrentHandleStress(t *testing.T) {
	const (
		clients = 16
		region  = 256
		rounds  = 25
	)

	for _, strategy := range positionedStrategies {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			t.Parallel()
			path := createAF(t, vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "passthrough"},
				Cache:   "memory",
			})
			seedData(t, path, make([]byte, clients*region))
			h, err := core.Open(path, core.Options{Strategy: strategy})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer h.Close()

			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(client int) {
					defer wg.Done()
					base := int64(client * region)
					pattern := bytes.Repeat([]byte{byte(client + 1)}, region)
					got := make([]byte, region)
					for i := 0; i < rounds; i++ {
						// Positioned ops on this client's private region must
						// read back exactly what it wrote, no matter what the
						// other 15 clients are doing.
						if _, err := h.WriteAt(pattern, base); err != nil {
							errs <- fmt.Errorf("client %d WriteAt: %w", client, err)
							return
						}
						if _, err := h.ReadAt(got, base); err != nil {
							errs <- fmt.Errorf("client %d ReadAt: %w", client, err)
							return
						}
						if !bytes.Equal(got, pattern) {
							errs <- fmt.Errorf("client %d round %d: region corrupted", client, i)
							return
						}
						// Shared-offset ops race by design; they must stay
						// memory-safe and never fail with anything but EOF.
						if _, err := h.Seek(base, io.SeekStart); err != nil {
							errs <- fmt.Errorf("client %d Seek: %w", client, err)
							return
						}
						if _, err := h.Read(got[:16]); err != nil && !errors.Is(err, io.EOF) {
							errs <- fmt.Errorf("client %d Read: %w", client, err)
							return
						}
						if s := h.Stats(); s.InFlight < 0 {
							errs <- fmt.Errorf("client %d: InFlight gauge %d", client, s.InFlight)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			close(errs)
			if err := <-errs; err != nil {
				t.Fatal(err)
			}

			s := h.Stats()
			wantOps := uint64(clients * rounds)
			if s.Writes < wantOps || s.Reads < wantOps {
				t.Errorf("Stats lost operations: %+v, want ≥%d reads and writes", s, wantOps)
			}
			if s.BytesWritten < wantOps*region {
				t.Errorf("BytesWritten = %d, want ≥%d", s.BytesWritten, wantOps*region)
			}
		})
	}

	// The plain process strategy exposes only the ordered streams, so the
	// concurrent surface is readers draining one stream plus Stats snapshots:
	// together they must account for every seeded byte exactly once.
	t.Run("process", func(t *testing.T) {
		t.Parallel()
		seed := bytes.Repeat([]byte("stream"), 4096)
		path := createAF(t, vfs.Manifest{
			Program: vfs.ProgramSpec{Name: "passthrough"},
			Cache:   "memory",
		})
		seedData(t, path, seed)
		h, err := core.Open(path, core.Options{Strategy: core.StrategyProcess})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer h.Close()

		var (
			wg    sync.WaitGroup
			total sync.WaitGroup
			read  = make([]int, clients)
			errs  = make(chan error, clients)
			stop  = make(chan struct{})
		)
		total.Add(1)
		go func() { // Stats poller racing the readers
			defer total.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if s := h.Stats(); s.InFlight < 0 {
						errs <- fmt.Errorf("InFlight gauge %d", s.InFlight)
						return
					}
				}
			}
		}()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(client int) {
				defer wg.Done()
				buf := make([]byte, 64)
				for {
					n, err := h.Read(buf)
					read[client] += n
					if err != nil {
						if !errors.Is(err, io.EOF) {
							errs <- fmt.Errorf("reader %d: %w", client, err)
						}
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(stop)
		total.Wait()
		close(errs)
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, n := range read {
			sum += n
		}
		if sum != len(seed) {
			t.Errorf("concurrent readers drained %d bytes, want %d", sum, len(seed))
		}
	})
}
