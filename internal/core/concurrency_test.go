package core_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/vfs"
)

// TestReadAheadConcurrentReadersRace drives the shared adaptive prefetcher
// from several goroutines at once — each streaming its own region
// sequentially while occasionally writing it (which invalidates the window
// mid-fill). Under -race this exercises the window state machine: fills
// racing reads, generation bumps racing publications, and streak tracking
// fed from interleaved offsets. Every read must still return exactly the
// bytes its owner last wrote.
func TestReadAheadConcurrentReadersRace(t *testing.T) {
	const (
		workers = 4
		region  = 4096
		chunk   = 64
	)
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "disk",
	})
	seed := make([]byte, workers*region)
	for i := range seed {
		seed[i] = byte(i % 251)
	}
	seedData(t, path, seed)

	h, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer h.Close()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * region
			want := make([]byte, region)
			copy(want, seed[base:base+region])
			buf := make([]byte, chunk)
			for pass := 0; pass < 3; pass++ {
				// Stream the region sequentially: this is the access pattern
				// that arms the prefetch window.
				for off := 0; off < region; off += chunk {
					if _, err := h.ReadAt(buf, base+int64(off)); err != nil {
						errs <- fmt.Errorf("worker %d read at %d: %w", w, off, err)
						return
					}
					if !bytes.Equal(buf, want[off:off+chunk]) {
						errs <- fmt.Errorf("worker %d pass %d off %d: stale bytes", w, pass, off)
						return
					}
				}
				// Rewrite part of the region so the next pass races the
				// prefetcher's invalidation with other workers' fills.
				for i := range want[:chunk] {
					want[i] = byte(int(want[i]) + 1)
				}
				if _, err := h.WriteAt(want[:chunk], base); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestWriteBehindConcurrentFlushOrderingRace hammers the write-coalescing
// buffer from concurrent writers — adjacent small writes within per-worker
// regions, interleaved with reads of the same region (read-your-writes must
// flush overlaps) and Syncs (which settle the buffer). Under -race this
// checks the wb.mu → dispatcher lock ordering and flush/settle paths; after
// close, a fresh handle must observe every worker's final bytes.
func TestWriteBehindConcurrentFlushOrderingRace(t *testing.T) {
	for _, strategy := range []core.Strategy{core.StrategyThread, core.StrategyDirect} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			const (
				workers = 4
				region  = 2048
				chunk   = 32
			)
			path := createAF(t, vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "passthrough"},
				Cache:   "disk",
				Params:  map[string]string{"writebehind": "true"},
			})
			seedData(t, path, make([]byte, workers*region))

			h, err := core.Open(path, core.Options{Strategy: strategy})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}

			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := int64(w) * region
					fill := byte('A' + w)
					buf := make([]byte, chunk)
					for i := range buf {
						buf[i] = fill
					}
					got := make([]byte, chunk)
					for off := 0; off < region; off += chunk {
						if _, err := h.WriteAt(buf, base+int64(off)); err != nil {
							errs <- fmt.Errorf("worker %d write at %d: %w", w, off, err)
							return
						}
						// Read-your-writes: the overlap must be flushed and
						// the freshly written bytes visible immediately.
						if _, err := h.ReadAt(got, base+int64(off)); err != nil {
							errs <- fmt.Errorf("worker %d readback at %d: %w", w, off, err)
							return
						}
						if !bytes.Equal(got, buf) {
							errs <- fmt.Errorf("worker %d off %d: readback %q, want %q", w, off, got[:4], buf[:4])
							return
						}
						if off%(chunk*16) == 0 {
							if err := h.Sync(); err != nil {
								errs <- fmt.Errorf("worker %d sync: %w", w, err)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if err := h.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			// Close settles the buffer; a fresh handle sees every byte.
			h2, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer h2.Close()
			got := make([]byte, workers*region)
			if _, err := h2.ReadAt(got, 0); err != nil {
				t.Fatalf("final read: %v", err)
			}
			for w := 0; w < workers; w++ {
				fill := byte('A' + w)
				regionBytes := got[w*region : (w+1)*region]
				for i, b := range regionBytes {
					if b != fill {
						t.Fatalf("worker %d byte %d = %q, want %q", w, i, b, fill)
					}
				}
			}
		})
	}
}
