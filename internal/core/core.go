package core
