package core

import (
	"errors"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// transport is the client half of a strategy: it carries one session's
// operations from the application stubs to the sentinel. Implementations
// must be safe for concurrent use — the Handle no longer serializes
// independent operations, only those sharing the seek offset. The one
// exception is the plain process strategy's stream transport, whose
// readAt/writeAt are only ever reached through Read/Write and therefore
// arrive pre-serialized under the Handle's offset lock, preserving stream
// ordering.
type transport interface {
	// readAt fills p from offset off. Stream transports ignore off and
	// deliver the next bytes of the sentinel's output stream.
	readAt(p []byte, off int64) (int, error)
	// writeAt stores p at offset off. Stream transports ignore off and
	// append to the sentinel's input stream.
	writeAt(p []byte, off int64) (int, error)
	size() (int64, error)
	truncate(n int64) error
	sync() error
	lock(off, n int64) error
	unlock(off, n int64) error
	control(req []byte) ([]byte, error)
	close() error
}

// Handle is an open session on an active file. It exposes the ordinary file
// API — Read, Write, Seek, and friends — so that, per the paper's central
// claim, "interactions with active files are indistinguishable from
// interactions with ordinary (passive) files". The strategy underneath
// determines only cost and (for the plain process strategy) which operations
// are supported.
//
// A Handle is safe for concurrent use, and independent operations proceed in
// parallel: only Read, Write, and Seek — the operations sharing the implicit
// seek offset — serialize against each other. Positioned operations
// (ReadAt, WriteAt), Size, Truncate, Sync, locks, and Control go straight to
// the transport concurrently, pipelined over the session channel.
type Handle struct {
	strategy Strategy
	tr       transport

	// closeMu gates every operation (read side) against Close (write side),
	// so Close observes a quiesced session and ops never race a closing
	// transport.
	closeMu sync.RWMutex
	closed  bool

	// offMu guards only the seek offset — the streaming-op lock. Positioned
	// operations never take it.
	offMu  sync.Mutex
	offset int64

	stats handleStats
}

// Stats counts a session's activity — what the sentinel mediated on the
// application's behalf.
type Stats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
	Errors       uint64
	// InFlight is the number of operations currently executing against the
	// session — a gauge, not a counter; nonzero only while snapshotting
	// concurrently with active operations.
	InFlight int64
	// Carrier names the conduit the session's control channel actually runs
	// on ("pipe" or "shm") for strategies that have one; empty otherwise.
	Carrier string
	// CarrierFallback is non-empty exactly when the manifest requested the
	// shm carrier but the session was demoted to pipes; it records the
	// one-shot rejection reason (unsupported platform, segment allocation
	// failure), so the fallback is observable instead of silent.
	CarrierFallback string
}

// handleStats holds the live counters as atomics so Stats() snapshots never
// contend with the data path.
type handleStats struct {
	reads        atomic.Uint64
	writes       atomic.Uint64
	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
	errors       atomic.Uint64
	inFlight     atomic.Int64
}

var (
	_ io.ReadWriteSeeker = (*Handle)(nil)
	_ io.ReaderAt        = (*Handle)(nil)
	_ io.WriterAt        = (*Handle)(nil)
	_ io.Closer          = (*Handle)(nil)
)

func newHandle(strategy Strategy, tr transport) *Handle {
	return &Handle{strategy: strategy, tr: tr}
}

// Strategy returns the implementation strategy serving this handle.
func (h *Handle) Strategy() Strategy { return h.strategy }

// BatchStats reports command-channel flush amortization — frames sent versus
// vectored writes issued — for strategies whose transport batches (procctl).
// ok is false when the strategy has no batched command channel.
func (h *Handle) BatchStats() (wire.BatchStats, bool) {
	bs, ok := h.tr.(interface{ batchStats() wire.BatchStats })
	if !ok {
		return wire.BatchStats{}, false
	}
	return bs.batchStats(), true
}

// DataPlaneStats counts the syscall economy of a session's control channel:
// how many eventfd doorbells the rings actually rang versus suppressed
// (coalesced or peer-running), and how many response frames each receive
// wakeup delivered. Ring counters live in the shared segment, so they cover
// both processes and both directions.
type DataPlaneStats struct {
	Carrier         string // "shm" or "pipe"
	CarrierFallback string // carrier demotion reason (shm→pipe, lane→dedicated), when any
	Doorbells       uint64 // eventfd doorbells rung, all rings, both sides
	Suppressed      uint64 // wakeups avoided (peer running, or coalesced into a flush)
	RecvFrames      uint64 // response frames the client receive loop decoded
	RecvWakeups     uint64 // read syscalls that delivered them (0 on shm: no hot-path reads)

	// Descriptor economy of the session's segment. On the shared MPSC lane
	// plane many sessions split one segment's descriptors; SegmentSessions
	// says how many ways, so fds-per-session = SegmentFDs / SegmentSessions.
	// A dedicated segment reports SegmentSessions 1; the pipe carrier, all
	// zeros.
	SegmentSessions int // sessions multiplexed on this session's segment (incl. draining)
	SegmentFDs      int // parent-side descriptors the segment pins (file + doorbells)
	DoorbellFDs     int // doorbell eventfds among them
	NumaNode        int // node the segment is bound to; -1 when unplaced
}

// DataPlaneStats reports the session's transport-level wakeup counters for
// strategies with a framed control channel (procctl). ok is false for the
// rest.
func (h *Handle) DataPlaneStats() (DataPlaneStats, bool) {
	ds, ok := h.tr.(interface{ dataPlaneStats() DataPlaneStats })
	if !ok {
		return DataPlaneStats{}, false
	}
	return ds.dataPlaneStats(), true
}

// Stats returns a snapshot of the session's activity counters. It never
// blocks behind in-flight operations.
func (h *Handle) Stats() Stats {
	s := Stats{
		Reads:        h.stats.reads.Load(),
		Writes:       h.stats.writes.Load(),
		BytesRead:    h.stats.bytesRead.Load(),
		BytesWritten: h.stats.bytesWritten.Load(),
		Errors:       h.stats.errors.Load(),
		InFlight:     h.stats.inFlight.Load(),
	}
	if ci, ok := h.tr.(interface{ carrierInfo() (string, string) }); ok {
		s.Carrier, s.CarrierFallback = ci.carrierInfo()
	}
	return s
}

// begin admits one operation: it takes the close gate and bumps the
// in-flight gauge. Every successful begin must be paired with end.
func (h *Handle) begin() error {
	h.closeMu.RLock()
	if h.closed {
		h.closeMu.RUnlock()
		return wire.ErrClosed
	}
	h.stats.inFlight.Add(1)
	return nil
}

// end retires an operation admitted by begin.
func (h *Handle) end() {
	h.stats.inFlight.Add(-1)
	h.closeMu.RUnlock()
}

// countRead updates the read counters.
func (h *Handle) countRead(n int, err error) {
	h.stats.reads.Add(1)
	h.stats.bytesRead.Add(uint64(n))
	if err != nil {
		h.stats.errors.Add(1)
	}
}

// countWrite updates the write counters.
func (h *Handle) countWrite(n int, err error) {
	h.stats.writes.Add(1)
	h.stats.bytesWritten.Add(uint64(n))
	if err != nil {
		h.stats.errors.Add(1)
	}
}

// Read reads from the current offset, advancing it. Reads serialize against
// Write and Seek (they share the offset) but not against positioned ops.
func (h *Handle) Read(p []byte) (int, error) {
	if err := h.begin(); err != nil {
		return 0, err
	}
	defer h.end()
	h.offMu.Lock()
	defer h.offMu.Unlock()
	n, err := h.tr.readAt(p, h.offset)
	h.offset += int64(n)
	h.countRead(n, err)
	return n, err
}

// Write writes at the current offset, advancing it. Writes serialize against
// Read and Seek (they share the offset) but not against positioned ops.
func (h *Handle) Write(p []byte) (int, error) {
	if err := h.begin(); err != nil {
		return 0, err
	}
	defer h.end()
	h.offMu.Lock()
	defer h.offMu.Unlock()
	n, err := h.tr.writeAt(p, h.offset)
	h.offset += int64(n)
	h.countWrite(n, err)
	return n, err
}

// ReadAt reads at an absolute offset without moving the handle's offset.
// Concurrent ReadAt calls proceed in parallel. Unsupported on the plain
// process strategy.
func (h *Handle) ReadAt(p []byte, off int64) (int, error) {
	if err := h.begin(); err != nil {
		return 0, err
	}
	defer h.end()
	if !h.strategy.SupportsPositioning() {
		return 0, wire.ErrUnsupported
	}
	n, err := h.tr.readAt(p, off)
	h.countRead(n, err)
	return n, err
}

// WriteAt writes at an absolute offset without moving the handle's offset.
// Concurrent WriteAt calls proceed in parallel. Unsupported on the plain
// process strategy.
func (h *Handle) WriteAt(p []byte, off int64) (int, error) {
	if err := h.begin(); err != nil {
		return 0, err
	}
	defer h.end()
	if !h.strategy.SupportsPositioning() {
		return 0, wire.ErrUnsupported
	}
	n, err := h.tr.writeAt(p, off)
	h.countWrite(n, err)
	return n, err
}

// Seek repositions the handle offset. On the plain process strategy it is
// dropped with wire.ErrUnsupported, matching §4.1.
func (h *Handle) Seek(offset int64, whence int) (int64, error) {
	if err := h.begin(); err != nil {
		return 0, err
	}
	defer h.end()
	if !h.strategy.SupportsPositioning() {
		return 0, wire.ErrUnsupported
	}
	h.offMu.Lock()
	defer h.offMu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = h.offset
	case io.SeekEnd:
		size, err := h.tr.size()
		if err != nil {
			return 0, err
		}
		base = size
	default:
		return 0, errors.New("core: invalid seek whence")
	}
	if offset > 0 && base > math.MaxInt64-offset {
		return 0, errors.New("core: seek position overflows int64")
	}
	target := base + offset
	if target < 0 {
		return 0, errors.New("core: negative seek position")
	}
	h.offset = target
	return target, nil
}

// Size returns the session content length (GetFileSize). Unsupported on the
// plain process strategy.
func (h *Handle) Size() (int64, error) {
	if err := h.begin(); err != nil {
		return 0, err
	}
	defer h.end()
	if !h.strategy.SupportsPositioning() {
		return 0, wire.ErrUnsupported
	}
	return h.tr.size()
}

// Truncate sets the content length. Unsupported on the plain process
// strategy.
func (h *Handle) Truncate(n int64) error {
	if err := h.begin(); err != nil {
		return err
	}
	defer h.end()
	if !h.strategy.SupportsPositioning() {
		return wire.ErrUnsupported
	}
	return h.tr.truncate(n)
}

// Sync flushes sentinel state (caches, deferred writes, remote propagation).
func (h *Handle) Sync() error {
	if err := h.begin(); err != nil {
		return err
	}
	defer h.end()
	if !h.strategy.SupportsPositioning() {
		return wire.ErrUnsupported
	}
	return h.tr.sync()
}

// Lock acquires a byte-range lock [off, off+n) if the program supports it.
func (h *Handle) Lock(off, n int64) error {
	if err := h.begin(); err != nil {
		return err
	}
	defer h.end()
	if !h.strategy.SupportsPositioning() {
		return wire.ErrUnsupported
	}
	return h.tr.lock(off, n)
}

// Unlock releases a byte-range lock.
func (h *Handle) Unlock(off, n int64) error {
	if err := h.begin(); err != nil {
		return err
	}
	defer h.end()
	if !h.strategy.SupportsPositioning() {
		return wire.ErrUnsupported
	}
	return h.tr.unlock(off, n)
}

// Control sends a program-specific out-of-band command.
func (h *Handle) Control(req []byte) ([]byte, error) {
	if err := h.begin(); err != nil {
		return nil, err
	}
	defer h.end()
	if !h.strategy.SupportsPositioning() {
		return nil, wire.ErrUnsupported
	}
	return h.tr.control(req)
}

// Close ends the session, terminating the sentinel ("the sentinel process is
// ... terminated when a user process ... closes the active file", §2.2).
// Close waits for in-flight operations to retire, then closes the transport.
// Close is idempotent.
func (h *Handle) Close() error {
	h.closeMu.Lock()
	defer h.closeMu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	return h.tr.close()
}
