package core

import (
	"errors"
	"io"
	"sync"

	"repro/internal/wire"
)

// transport is the client half of a strategy: it carries one session's
// operations from the application stubs to the sentinel. Implementations are
// not required to be concurrency safe; Handle serializes access.
type transport interface {
	// readAt fills p from offset off. Stream transports ignore off and
	// deliver the next bytes of the sentinel's output stream.
	readAt(p []byte, off int64) (int, error)
	// writeAt stores p at offset off. Stream transports ignore off and
	// append to the sentinel's input stream.
	writeAt(p []byte, off int64) (int, error)
	size() (int64, error)
	truncate(n int64) error
	sync() error
	lock(off, n int64) error
	unlock(off, n int64) error
	control(req []byte) ([]byte, error)
	close() error
}

// Handle is an open session on an active file. It exposes the ordinary file
// API — Read, Write, Seek, and friends — so that, per the paper's central
// claim, "interactions with active files are indistinguishable from
// interactions with ordinary (passive) files". The strategy underneath
// determines only cost and (for the plain process strategy) which operations
// are supported.
type Handle struct {
	mu       sync.Mutex
	strategy Strategy
	tr       transport
	offset   int64
	closed   bool
	stats    Stats
}

// Stats counts a session's activity — what the sentinel mediated on the
// application's behalf.
type Stats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
	Errors       uint64
}

var (
	_ io.ReadWriteSeeker = (*Handle)(nil)
	_ io.ReaderAt        = (*Handle)(nil)
	_ io.WriterAt        = (*Handle)(nil)
	_ io.Closer          = (*Handle)(nil)
)

func newHandle(strategy Strategy, tr transport) *Handle {
	return &Handle{strategy: strategy, tr: tr}
}

// Strategy returns the implementation strategy serving this handle.
func (h *Handle) Strategy() Strategy { return h.strategy }

// Stats returns a snapshot of the session's activity counters.
func (h *Handle) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// countRead updates the read counters. Called with h.mu held.
func (h *Handle) countRead(n int, err error) {
	h.stats.Reads++
	h.stats.BytesRead += uint64(n)
	if err != nil {
		h.stats.Errors++
	}
}

// countWrite updates the write counters. Called with h.mu held.
func (h *Handle) countWrite(n int, err error) {
	h.stats.Writes++
	h.stats.BytesWritten += uint64(n)
	if err != nil {
		h.stats.Errors++
	}
}

// Read reads from the current offset, advancing it.
func (h *Handle) Read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, wire.ErrClosed
	}
	n, err := h.tr.readAt(p, h.offset)
	h.offset += int64(n)
	h.countRead(n, err)
	return n, err
}

// Write writes at the current offset, advancing it.
func (h *Handle) Write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, wire.ErrClosed
	}
	n, err := h.tr.writeAt(p, h.offset)
	h.offset += int64(n)
	h.countWrite(n, err)
	return n, err
}

// ReadAt reads at an absolute offset without moving the handle's offset.
// Unsupported on the plain process strategy.
func (h *Handle) ReadAt(p []byte, off int64) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, wire.ErrClosed
	}
	if !h.strategy.SupportsPositioning() {
		return 0, wire.ErrUnsupported
	}
	n, err := h.tr.readAt(p, off)
	h.countRead(n, err)
	return n, err
}

// WriteAt writes at an absolute offset without moving the handle's offset.
// Unsupported on the plain process strategy.
func (h *Handle) WriteAt(p []byte, off int64) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, wire.ErrClosed
	}
	if !h.strategy.SupportsPositioning() {
		return 0, wire.ErrUnsupported
	}
	n, err := h.tr.writeAt(p, off)
	h.countWrite(n, err)
	return n, err
}

// Seek repositions the handle offset. On the plain process strategy it is
// dropped with wire.ErrUnsupported, matching §4.1.
func (h *Handle) Seek(offset int64, whence int) (int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, wire.ErrClosed
	}
	if !h.strategy.SupportsPositioning() {
		return 0, wire.ErrUnsupported
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = h.offset
	case io.SeekEnd:
		size, err := h.tr.size()
		if err != nil {
			return 0, err
		}
		base = size
	default:
		return 0, errors.New("core: invalid seek whence")
	}
	target := base + offset
	if target < 0 {
		return 0, errors.New("core: negative seek position")
	}
	h.offset = target
	return target, nil
}

// Size returns the session content length (GetFileSize). Unsupported on the
// plain process strategy.
func (h *Handle) Size() (int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, wire.ErrClosed
	}
	if !h.strategy.SupportsPositioning() {
		return 0, wire.ErrUnsupported
	}
	return h.tr.size()
}

// Truncate sets the content length. Unsupported on the plain process
// strategy.
func (h *Handle) Truncate(n int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return wire.ErrClosed
	}
	if !h.strategy.SupportsPositioning() {
		return wire.ErrUnsupported
	}
	return h.tr.truncate(n)
}

// Sync flushes sentinel state (caches, deferred writes, remote propagation).
func (h *Handle) Sync() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return wire.ErrClosed
	}
	if !h.strategy.SupportsPositioning() {
		return wire.ErrUnsupported
	}
	return h.tr.sync()
}

// Lock acquires a byte-range lock [off, off+n) if the program supports it.
func (h *Handle) Lock(off, n int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return wire.ErrClosed
	}
	if !h.strategy.SupportsPositioning() {
		return wire.ErrUnsupported
	}
	return h.tr.lock(off, n)
}

// Unlock releases a byte-range lock.
func (h *Handle) Unlock(off, n int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return wire.ErrClosed
	}
	if !h.strategy.SupportsPositioning() {
		return wire.ErrUnsupported
	}
	return h.tr.unlock(off, n)
}

// Control sends a program-specific out-of-band command.
func (h *Handle) Control(req []byte) ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, wire.ErrClosed
	}
	if !h.strategy.SupportsPositioning() {
		return nil, wire.ErrUnsupported
	}
	return h.tr.control(req)
}

// Close ends the session, terminating the sentinel ("the sentinel process is
// ... terminated when a user process ... closes the active file", §2.2).
// Close is idempotent.
func (h *Handle) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	return h.tr.close()
}
