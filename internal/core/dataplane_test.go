package core

import (
	"errors"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/shm"
	"repro/internal/vfs"
)

// Tests for the syscall-economy observability surface (PR 7): carrier and
// fallback reporting through Handle.Stats, the data-plane wakeup counters,
// warm-adoption epoch advancement, and torn adoption on a shared segment.

func openTestHandle(t *testing.T, params map[string]string) *Handle {
	t.Helper()
	path := filepath.Join(t.TempDir(), "file.af")
	if err := vfs.Create(path, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "memory",
		Params:  params,
	}); err != nil {
		t.Fatalf("vfs.Create: %v", err)
	}
	h, err := Open(path, Options{Strategy: StrategyProcCtl})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

// TestCarrierReportedInStats: Handle.Stats names the conduit the session
// actually got, with no fallback reason when the request was honored.
func TestCarrierReportedInStats(t *testing.T) {
	h := openTestHandle(t, nil)
	if s := h.Stats(); s.Carrier != "pipe" || s.CarrierFallback != "" {
		t.Fatalf("default carrier stats = %q/%q, want pipe with no fallback", s.Carrier, s.CarrierFallback)
	}

	if shm.Supported() {
		hs := openTestHandle(t, map[string]string{"transport": "shm"})
		if s := hs.Stats(); s.Carrier != "shm" || s.CarrierFallback != "" {
			t.Fatalf("shm carrier stats = %q/%q, want shm with no fallback", s.Carrier, s.CarrierFallback)
		}
	}
}

// TestCarrierFallbackReasonPlumbed: the demotion reason recorded at spawn
// must surface verbatim through carrierInfo — the seam Handle.Stats reads.
// (Provoking a real allocation failure is not portable, so the plumbing is
// pinned directly; newSessionSegment's reason strings are covered on
// platforms where shm compiles out.)
func TestCarrierFallbackReasonPlumbed(t *testing.T) {
	tr := &procCtlTransport{fallback: "segment allocation failed: injected"}
	carrier, reason := tr.carrierInfo()
	if carrier != "pipe" || reason != "segment allocation failed: injected" {
		t.Fatalf("carrierInfo = %q/%q", carrier, reason)
	}

	// A session that did get its segment reports shm — and still surfaces a
	// recorded demotion reason (a lane→dedicated fallback lands exactly so).
	seg, err := shm.New(0, 0)
	if err != nil {
		t.Skipf("shm.New: %v", err)
	}
	defer seg.Close()
	trShm := &procCtlTransport{seg: seg}
	if carrier, reason := trShm.carrierInfo(); carrier != "shm" || reason != "" {
		t.Fatalf("shm carrierInfo = %q/%q, want shm with no fallback", carrier, reason)
	}
	trShm.fallback = "lane plane: injected"
	if carrier, reason := trShm.carrierInfo(); carrier != "shm" || reason != "lane plane: injected" {
		t.Fatalf("demoted shm carrierInfo = %q/%q, want shm with lane demotion reason", carrier, reason)
	}
}

// TestNoFallbackReasonForHonoredRequests: newSessionSegment leaves the
// reason empty when pipes were chosen, not imposed.
func TestNoFallbackReasonForHonoredRequests(t *testing.T) {
	for _, params := range []map[string]string{nil, {"transport": "pipe"}} {
		seg, reason, err := newSessionSegment(vfs.Manifest{Params: params}, StrategyProcCtl)
		if err != nil || seg != nil || reason != "" {
			t.Fatalf("pipe-by-choice: seg=%v reason=%q err=%v", seg, reason, err)
		}
	}
	// Non-procctl strategies have no control channel to demote.
	seg, reason, err := newSessionSegment(
		vfs.Manifest{Params: map[string]string{"transport": "shm"}}, StrategyProcess)
	if err != nil || seg != nil || reason != "" {
		t.Fatalf("process strategy: seg=%v reason=%q err=%v", seg, reason, err)
	}
}

// TestDataPlaneStatsPipe: over pipes, pipelined reads must show the drain
// discipline — frames decoded, wakeups counted, and no ring doorbells.
func TestDataPlaneStatsPipe(t *testing.T) {
	h := openTestHandle(t, map[string]string{"readahead": "false"})
	if _, err := h.WriteAt(make([]byte, 8192), 0); err != nil {
		t.Fatalf("seed write: %v", err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < 50; i++ {
				if _, err := h.ReadAt(buf, int64((w*50+i)*64)%8192); err != nil {
					t.Errorf("ReadAt: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	ds, ok := h.DataPlaneStats()
	if !ok {
		t.Fatal("procctl handle has no data-plane stats")
	}
	if ds.Carrier != "pipe" || ds.Doorbells != 0 || ds.Suppressed != 0 {
		t.Fatalf("pipe session rang ring doorbells: %+v", ds)
	}
	if ds.RecvFrames == 0 || ds.RecvWakeups == 0 {
		t.Fatalf("pipe receive path counted nothing: %+v", ds)
	}
	if ds.RecvFrames < ds.RecvWakeups {
		t.Fatalf("more wakeups than frames (%d > %d) — drain buffer not draining", ds.RecvWakeups, ds.RecvFrames)
	}
}

// TestDataPlaneStatsShm: over rings, the receive path is syscall-free
// (RecvWakeups stays zero) and the doorbell ledger moves.
func TestDataPlaneStatsShm(t *testing.T) {
	if !shm.Supported() {
		t.Skip("shm transport unsupported on this platform")
	}
	h := openTestHandle(t, map[string]string{"transport": "shm", "readahead": "false"})
	if _, err := h.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	buf := make([]byte, 64)
	for i := 0; i < 100; i++ {
		if _, err := h.ReadAt(buf, int64(i*37)%4000); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
	}

	ds, ok := h.DataPlaneStats()
	if !ok {
		t.Fatal("procctl handle has no data-plane stats")
	}
	if ds.Carrier != "shm" {
		t.Fatalf("carrier = %q, want shm", ds.Carrier)
	}
	if ds.RecvWakeups != 0 {
		t.Fatalf("shm receive path issued %d read syscalls, want 0", ds.RecvWakeups)
	}
	if ds.RecvFrames == 0 {
		t.Fatal("no response frames counted")
	}
	if ds.Doorbells+ds.Suppressed == 0 {
		t.Fatal("ring wakeup ledger never moved")
	}
}

// TestWarmAdoptionAdvancesEpoch: adopting a pooled shm sentinel must bump
// the segment's control-region epoch, marking the new binding generation.
func TestWarmAdoptionAdvancesEpoch(t *testing.T) {
	if !shm.Supported() {
		t.Skip("shm transport unsupported on this platform")
	}
	t.Cleanup(DrainSentinelPool)
	params := map[string]string{"transport": "shm", "pool": "1"}

	tr := newTestProcCtl(t, params)
	if tr.seg.Epoch() != 0 {
		t.Fatalf("cold spawn epoch = %d, want 0", tr.seg.Epoch())
	}
	if err := tr.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	path := tr.poolPath
	deadline := time.Now().Add(10 * time.Second)
	for IdleSentinels(path) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pool never replenished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	m, err := vfs.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := newProcCtlTransport(path, m)
	if err != nil {
		t.Fatalf("warm open: %v", err)
	}
	defer tr2.close()
	if tr2.seg == nil {
		t.Fatal("warm adoption lost the segment")
	}
	if e := tr2.seg.Epoch(); e < 1 {
		t.Fatalf("adopted segment epoch = %d, want >= 1", e)
	}
}

// TestTornAdoptionClosesSharedSegment is the torn-rebind drill: the warm
// sentinel is frozen, adoption starts, and the child is killed with the
// OpOpen handshake in flight on the shared segment. The open must recover
// by cold-spawning, and the torn segment must come out fully closed — every
// ring rejecting traffic, mapping released — with no goroutine leaked.
func TestTornAdoptionClosesSharedSegment(t *testing.T) {
	if !shm.Supported() {
		t.Skip("shm transport unsupported on this platform")
	}
	faultinject.LeakCheck(t)
	t.Cleanup(DrainSentinelPool)

	path := filepath.Join(t.TempDir(), "file.af")
	if err := vfs.Create(path, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "memory",
		Params:  map[string]string{"transport": "shm", "pool": "1"},
	}); err != nil {
		t.Fatalf("vfs.Create: %v", err)
	}
	if _, err := PrewarmSentinels(path); err != nil {
		t.Fatalf("PrewarmSentinels: %v", err)
	}
	procPool.mu.Lock()
	warm := procPool.idle[path][0]
	procPool.mu.Unlock()
	if warm.seg == nil {
		t.Fatal("pooled shm sentinel has no segment")
	}

	// Freeze the child so the rebind handshake is genuinely in flight when
	// death lands, then open: adoption sends OpOpen into a stopped process.
	if err := syscall.Kill(warm.cmd.Process.Pid, syscall.SIGSTOP); err != nil {
		t.Fatalf("SIGSTOP: %v", err)
	}
	opened := make(chan error, 1)
	var h *Handle
	go func() {
		var err error
		h, err = Open(path, Options{Strategy: StrategyProcCtl})
		opened <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the rebind reach the rings
	if err := syscall.Kill(warm.cmd.Process.Pid, syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}

	select {
	case err := <-opened:
		if err != nil {
			t.Fatalf("Open after torn adoption: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("open wedged on the torn rebind")
	}
	defer h.Close()

	// The torn segment must be closed outright: control region's owner gone,
	// every ring in the directory rejecting I/O instead of parking forever.
	deadline := time.Now().Add(5 * time.Second)
	for !warm.seg.Closed() {
		if time.Now().After(deadline) {
			t.Fatal("torn segment never closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, r := range warm.seg.Rings() {
		if _, err := r.Write([]byte{0}); !errors.Is(err, shm.ErrClosed) {
			t.Fatalf("ring %d after torn adoption: Write err = %v, want ErrClosed", i, err)
		}
	}
	// Stats must survive the unmap (the detached snapshot), not fault.
	_ = warm.seg.Cmd().Stats()

	// And the recovered session serves traffic.
	if _, err := h.WriteAt([]byte("recovered"), 0); err != nil {
		t.Fatalf("WriteAt on recovered session: %v", err)
	}
}
