package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ipc"
	"repro/internal/shm"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// Environment variables carrying the session description to a sentinel
// subprocess (the analogue of the stub "passing the created process the name
// of the data part", §4.1).
const (
	envChildMarker = "AF_SENTINEL_CHILD"
	envManifest    = "AF_MANIFEST"
	envStrategy    = "AF_STRATEGY"
	// envPooled marks a pre-spawned warm-pool sentinel: the child defers
	// opening its program until an OpOpen handshake arrives on the control
	// channel (or exits cleanly on EOF if the pool drains it unused).
	envPooled = "AF_SENTINEL_POOLED"
)

// childWaitTimeout bounds how long Close waits for a sentinel subprocess to
// exit before killing it.
const childWaitTimeout = 5 * time.Second

// ErrSentinelDied reports that the sentinel subprocess backing a session
// exited while the session was still open — the EIO-class verdict for a
// crashed or killed sentinel, surfaced promptly instead of as a hang or a
// counterfeit clean EOF.
var ErrSentinelDied = errors.New("core: sentinel process died")

// spawnSentinel starts the sentinel subprocess for manifestPath with the
// pipe layout of the given strategy, plus — when the manifest selects the
// shm transport and this platform supports it — a shared-memory segment
// whose files the child inherits after the pipes. The returned segment is
// nil whenever the session runs on pipes (by default, by platform fallback,
// or because segment allocation failed); the child learns the outcome via
// the envShm marker, never by guessing from the manifest. The returned
// fallback string is non-empty exactly when shm was requested but the
// session was demoted to pipes, and says why. When the manifest names an
// external executable it is run directly; otherwise the current binary is
// re-executed in child mode (the offline substitute for a separate sentinel
// image). extraEnv entries ("KEY=VALUE") are appended to the child
// environment.
func spawnSentinel(manifestPath string, m vfs.Manifest, strategy Strategy, extraEnv ...string) (*exec.Cmd, *ipc.ChannelFiles, *shm.Segment, string, error) {
	seg, fallback, err := newSessionSegment(m, strategy)
	if err != nil {
		return nil, nil, nil, "", err
	}
	cf, err := ipc.NewChannelFiles(strategy == StrategyProcCtl)
	if err != nil {
		if seg != nil {
			seg.Close()
		}
		return nil, nil, nil, "", err
	}
	fail := func(err error) (*exec.Cmd, *ipc.ChannelFiles, *shm.Segment, string, error) {
		cf.Close()
		if seg != nil {
			seg.Close()
		}
		return nil, nil, nil, "", err
	}

	var cmd *exec.Cmd
	if m.Program.Exec != "" {
		cmd = exec.Command(m.Program.Exec, m.Program.Args...)
	} else {
		self, err := os.Executable()
		if err != nil {
			return fail(fmt.Errorf("locate own executable: %w", err))
		}
		cmd = exec.Command(self)
	}
	cmd.Env = append(os.Environ(),
		envChildMarker+"=1",
		envManifest+"="+manifestPath,
		envStrategy+"="+strategy.String(),
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.ExtraFiles = cf.ChildFiles()
	if seg != nil {
		cmd.Env = append(cmd.Env, envShm+"=1")
		// Segment files follow the pipes; unlike pipe ends they are shared,
		// not paired, so the parent keeps every one of them open.
		cmd.ExtraFiles = append(cmd.ExtraFiles, seg.ChildFiles()...)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fail(fmt.Errorf("start sentinel process: %w", err))
	}
	cf.CloseChildEnds()
	return cmd, cf, seg, fallback, nil
}

// childMonitor owns the one allowed cmd.Wait call for a sentinel subprocess
// and publishes its outcome: transports learn about sentinel death the
// moment it happens (the onDeath hook) instead of discovering it as a
// mid-operation hang, and Close reaps through the same channel.
type childMonitor struct {
	cmd  *exec.Cmd
	done chan struct{}
	err  error // cmd.Wait result; valid once exited is true
	dead atomic.Bool

	hookMu sync.Mutex
	hook   func(error) // current death callback; swappable via setOnDeath
	fired  bool        // the callback slot has been consumed
}

// watchChild begins supervising cmd. onDeath (optional) runs on the
// monitor's goroutine as soon as the child exits, with the wait error.
func watchChild(cmd *exec.Cmd, onDeath func(error)) *childMonitor {
	mon := &childMonitor{cmd: cmd, done: make(chan struct{}), hook: onDeath}
	go func() {
		mon.err = cmd.Wait()
		mon.dead.Store(true) // publishes err: Store orders after the write
		close(mon.done)
		mon.hookMu.Lock()
		cb := mon.hook
		mon.fired = true
		mon.hookMu.Unlock()
		if cb != nil {
			cb(mon.err)
		}
	}()
	return mon
}

// setOnDeath replaces the monitor's death callback — how a warm-pool
// sentinel's supervision is handed from the pool (evict the idle entry) to
// the transport that adopted it (poison the mux). If the child already died,
// cb is invoked immediately on the caller's goroutine, so a handoff can
// never miss the death notification.
func (mon *childMonitor) setOnDeath(cb func(error)) {
	mon.hookMu.Lock()
	if mon.fired {
		mon.hookMu.Unlock()
		if cb != nil {
			cb(mon.err)
		}
		return
	}
	mon.hook = cb
	mon.hookMu.Unlock()
}

// exited reports, without blocking, whether the child has exited and with
// what wait error.
func (mon *childMonitor) exited() (error, bool) {
	if !mon.dead.Load() {
		return nil, false
	}
	return mon.err, true
}

// reap waits for the child to exit, killing it if it outlives the timeout.
func (mon *childMonitor) reap() error {
	select {
	case <-mon.done:
		return mon.err
	case <-time.After(childWaitTimeout):
		mon.cmd.Process.Kill()
		<-mon.done
		return mon.err
	}
}

// sentinelDeath wraps a wait outcome as the EIO-class session error.
func sentinelDeath(waitErr error) error {
	if waitErr == nil {
		return fmt.Errorf("%w: exited before session close", ErrSentinelDied)
	}
	return fmt.Errorf("%w: %v", ErrSentinelDied, waitErr)
}

// opTimeoutParam parses the manifest's per-operation deadline for control
// exchanges ("optimeout", a Go duration; empty or absent disables it).
func opTimeoutParam(m vfs.Manifest) (time.Duration, error) {
	v := m.Params["optimeout"]
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("core: bad optimeout param %q", v)
	}
	return d, nil
}

// processTransport is the client side of the plain process strategy (§4.1):
// two data pipes, no control channel. Reads pull the next bytes of the
// sentinel's output stream; writes push onto its input stream; everything
// else is unsupported.
type processTransport struct {
	cmd *exec.Cmd
	cf  *ipc.ChannelFiles
	mon *childMonitor
}

var _ transport = (*processTransport)(nil)

func newProcessTransport(manifestPath string, m vfs.Manifest) (*processTransport, error) {
	cmd, cf, _, _, err := spawnSentinel(manifestPath, m, StrategyProcess)
	if err != nil {
		return nil, err
	}
	t := &processTransport{cmd: cmd, cf: cf}
	t.mon = watchChild(cmd, nil)
	return t, nil
}

func (t *processTransport) readAt(p []byte, _ int64) (int, error) {
	n, err := t.cf.FromChild.Read(p)
	if err != nil && errors.Is(err, io.EOF) {
		// Pipe EOF is how both a finished stream AND a crashed sentinel
		// look. Distinguish them: a child that already failed turns the
		// counterfeit clean EOF into the honest EIO-class error.
		if waitErr, dead := t.mon.exited(); dead && waitErr != nil {
			return n, sentinelDeath(waitErr)
		}
	}
	return n, err
}

func (t *processTransport) writeAt(p []byte, _ int64) (int, error) {
	n, err := t.cf.ToChild.Write(p)
	if err != nil {
		if waitErr, dead := t.mon.exited(); dead {
			return n, sentinelDeath(waitErr)
		}
	}
	return n, err
}

func (t *processTransport) size() (int64, error)    { return 0, wire.ErrUnsupported }
func (t *processTransport) truncate(int64) error    { return wire.ErrUnsupported }
func (t *processTransport) sync() error             { return wire.ErrUnsupported }
func (t *processTransport) lock(_, _ int64) error   { return wire.ErrUnsupported }
func (t *processTransport) unlock(_, _ int64) error { return wire.ErrUnsupported }
func (t *processTransport) control([]byte) ([]byte, error) {
	return nil, wire.ErrUnsupported
}

func (t *processTransport) close() error {
	// Closing our pipe ends delivers EOF to the sentinel's writer loop and
	// EPIPE to its reader loop; it then flushes and exits.
	t.cf.Close()
	if err := t.mon.reap(); err != nil {
		var exitErr *exec.ExitError
		if errors.As(err, &exitErr) {
			return fmt.Errorf("sentinel process: %w", err)
		}
		return err
	}
	return nil
}

// procCtlTransport is the client side of the process-plus-control strategy
// (§4.2): requests travel as commands on the control pipe; read results
// return as frames on the read pipe; write payloads stream down the write
// pipe without waiting for completion, exactly the asymmetry Figure 6
// measures ("writes are issued without waiting for their completion"). The
// pipe pair is driven through an ipc.Mux, so any number of goroutines keep
// exchanges in flight concurrently, correlated by Seq rather than lockstep
// ordering.
//
// Failure handling: a childMonitor poisons the mux the instant the sentinel
// subprocess exits, so every in-flight and future exchange reports
// ErrSentinelDied promptly instead of blocking on a pipe no one will ever
// answer. An optional per-operation deadline (manifest param "optimeout")
// additionally bounds every waiting exchange even while the child is alive
// but unresponsive.
type procCtlTransport struct {
	cmd       *exec.Cmd
	cf        *ipc.ChannelFiles
	seg       *shm.Segment  // dedicated shared-memory segment; nil on pipe or lane carriers
	lane      *laneConn     // shared MPSC lane; nil off the lane plane
	fallback  string        // why the requested carrier was demoted ("" otherwise)
	conn      ipc.FrameConn // the session conduit the mux runs over
	mux       *ipc.Mux
	pf        *prefetcher // client-side read-ahead; nil when opted out
	mon       *childMonitor
	closing   atomic.Bool // set by close(); suppresses the death hook
	opTimeout time.Duration

	// Warm-pool replenishment, armed for pooled manifests: close() tops the
	// pool back up, so the replacement's fork+exec overlaps the NEXT
	// session's application work instead of contending with the latency-
	// sensitive open+first-ops window that follows an adoption.
	poolPath string
	poolM    vfs.Manifest
	poolN    int
}

var _ transport = (*procCtlTransport)(nil)

func newProcCtlTransport(manifestPath string, m vfs.Manifest) (*procCtlTransport, error) {
	opTimeout, err := opTimeoutParam(m)
	if err != nil {
		return nil, err
	}
	poolN, err := poolParam(m)
	if err != nil {
		return nil, err
	}
	lanes, err := shmLanesParam(m)
	if err != nil {
		return nil, err
	}
	var laneFallback string
	if lanes > 0 {
		// Lane plane: multiplex this session onto a shared MPSC segment —
		// one sentinel and five descriptors serve up to `lanes` sessions of
		// this manifest. Any plane-level refusal falls back to a dedicated
		// session below, with the reason surfaced through carrier stats.
		t, reason, err := acquireLaneTransport(manifestPath, m, opTimeout, lanes)
		if err != nil {
			return nil, err
		}
		if t != nil {
			return t, nil
		}
		laneFallback = "lane plane: " + reason
	}
	if poolN > 0 {
		// Warm path: adopt a pre-spawned sentinel and rebind it with one
		// pipe handshake instead of fork+exec. The pool is topped back up
		// when this session closes, not here — see close().
		if t, ok := acquireWarmTransport(manifestPath, m, opTimeout); ok {
			t.poolPath, t.poolM, t.poolN = manifestPath, m, poolN
			if laneFallback != "" {
				if t.fallback != "" {
					t.fallback = laneFallback + "; " + t.fallback
				} else {
					t.fallback = laneFallback
				}
			}
			return t, nil
		}
	}
	cmd, cf, seg, fallback, err := spawnSentinel(manifestPath, m, StrategyProcCtl)
	if err != nil {
		return nil, err
	}
	if laneFallback != "" {
		// The session runs, but not on the shared plane it asked for; keep
		// both demotion reasons visible.
		if fallback != "" {
			fallback = laneFallback + "; " + fallback
		} else {
			fallback = laneFallback
		}
	}
	t := &procCtlTransport{
		cmd:       cmd,
		cf:        cf,
		seg:       seg,
		fallback:  fallback,
		conn:      sessionConn(cf, seg),
		opTimeout: opTimeout,
		poolPath:  manifestPath,
		poolM:     m,
		poolN:     poolN,
	}
	t.mux = ipc.NewMuxConn(t.conn)
	t.mon = watchChild(cmd, func(waitErr error) {
		if t.closing.Load() {
			return
		}
		// Sentinel death detection: waitpid fired while the session was
		// open. Fail every blocked and future exchange right now — the
		// pipes may deliver EOF only much later (or never, for the write
		// pipe), and nothing should wait to find out. A dead peer also
		// never rings a doorbell again, so the segment is closed here too:
		// that wakes the receive loop off its parked ring and unmaps the
		// memory instead of leaving it pinned for the session's remainder.
		t.mux.Fail(sentinelDeath(waitErr))
		if t.seg != nil {
			t.seg.Close()
		}
	})
	if m.Params["readahead"] != "false" {
		// Client-side window: sequential reads are answered by a memcpy out
		// of the window while an async fill — pipelined on the mux — keeps
		// it ahead of the application. This is where the pipe round trip
		// leaves the per-read critical path entirely.
		t.pf = newPrefetcher(t.muxReadAt, true)
	}
	return t, nil
}

// acquireLaneTransport opens one session on the shared MPSC lane plane. A
// nil transport with a non-empty reason means the plane refused (no lanes,
// spawn failure, unsupported platform) and the caller should fall back to a
// dedicated session; a non-nil error is a real session error — the program
// itself refused to open — that a dedicated sentinel would report
// identically, so no fallback is warranted.
func acquireLaneTransport(manifestPath string, m vfs.Manifest, opTimeout time.Duration, lanes int) (*procCtlTransport, string, error) {
	conn, reason, err := lanePlane.acquire(manifestPath, m, lanes)
	if err != nil {
		return nil, "", err
	}
	if conn == nil {
		return nil, reason, nil
	}
	t := &procCtlTransport{
		lane:      conn,
		conn:      conn,
		mon:       conn.ls.mon,
		opTimeout: opTimeout,
	}
	t.mux = ipc.NewMuxConn(conn)
	// Death fan-out: the hub's child monitor reaches this session through
	// the conduit's onFail hook. If the shared sentinel died before the hook
	// was set, the response queue is already closed and the handshake below
	// poisons the mux through its EOF instead.
	conn.setOnFail(func(err error) {
		if !t.closing.Load() {
			t.mux.Fail(err)
		}
	})
	// OpOpen handshake: the lane's server opens its own handler instance and
	// answers with the outcome — the same rebind a warm-pool adoption runs.
	ctx, cancel := context.WithTimeout(context.Background(), laneOpenTimeout)
	resp, rtErr := t.mux.RoundTripContext(ctx, &wire.Request{Op: wire.OpOpen}, nil)
	cancel()
	if rtErr != nil {
		t.mux.Close()
		conn.Close()
		return nil, fmt.Sprintf("lane open handshake: %v", rtErr), nil
	}
	if oerr := wire.ToError(wire.OpOpen, resp.Status, resp.Msg); oerr != nil {
		t.mux.Close()
		conn.Close()
		return nil, "", oerr
	}
	if m.Params["readahead"] != "false" {
		t.pf = newPrefetcher(t.muxReadAt, true)
	}
	return t, "", nil
}

// batchStats exposes the mux's command-channel flush amortization to
// Handle.BatchStats.
func (t *procCtlTransport) batchStats() wire.BatchStats { return t.mux.BatchStats() }

// carrierInfo reports which conduit the session actually runs on and, when a
// requested shm carrier was demoted, the one-shot rejection reason recorded
// at spawn — surfaced through Handle.Stats so silent fallback is observable.
func (t *procCtlTransport) carrierInfo() (carrier, fallback string) {
	if t.lane != nil || t.seg != nil {
		// Ring carrier — dedicated segment or a lane of a shared one. The
		// fallback slot still reports a lane→dedicated demotion, so an
		// operator can tell a chosen dedicated segment from a demoted one.
		return "shm", t.fallback
	}
	return "pipe", t.fallback
}

// dataPlaneStats exposes the session's syscall-economy counters to
// Handle.DataPlaneStats: doorbells rung vs suppressed on the rings (both
// directions, both processes — the counters live in the shared segment) and
// response frames decoded per receive wakeup on the mux.
func (t *procCtlTransport) dataPlaneStats() DataPlaneStats {
	s := DataPlaneStats{CarrierFallback: t.fallback, Carrier: "pipe", NumaNode: -1}
	switch {
	case t.lane != nil:
		// Shared segment: counters and descriptors are per segment, not per
		// session — SegmentSessions says how many ways they are split.
		s.Carrier = "shm"
		ls := t.lane.ls
		for _, q := range []*shm.MPSCQueue{ls.seg.Cmd(), ls.seg.Reply()} {
			qs := q.Stats()
			s.Doorbells += qs.Doorbells
			s.Suppressed += qs.Suppressed
		}
		claimed, draining := ls.seg.LaneCounts()
		s.SegmentSessions = claimed + draining
		s.SegmentFDs = 5 // segment file + four doorbells
		s.DoorbellFDs = 4
		s.NumaNode = ls.node
	case t.seg != nil:
		s.Carrier = "shm"
		for _, r := range t.seg.Rings() {
			rs := r.Stats()
			s.Doorbells += rs.Doorbells
			s.Suppressed += rs.Suppressed
		}
		s.SegmentSessions = 1
		s.SegmentFDs = 1 + 2*len(t.seg.Rings())
		s.DoorbellFDs = 2 * len(t.seg.Rings())
	}
	rs := t.mux.RecvStatsSnapshot()
	s.RecvFrames, s.RecvWakeups = rs.Frames, rs.Wakeups
	return s
}

// roundTrip performs one control exchange, bounded by the configured
// per-operation deadline when one is set.

func (t *procCtlTransport) roundTrip(req *wire.Request, dst []byte) (wire.Response, error) {
	if t.opTimeout <= 0 {
		resp, err := t.mux.RoundTrip(req, dst)
		return resp, t.deathVerdict(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), t.opTimeout)
	defer cancel()
	resp, err := t.mux.RoundTripContext(ctx, req, dst)
	return resp, t.deathVerdict(err)
}

// deathVerdict upgrades a transport error to ErrSentinelDied once the
// monitor confirms the child exited. The upgrade is needed because pipe EOF
// can win the race against waitpid: the receive loop poisons the mux with
// the EOF first, the first poison sticks, and without this check the session
// would keep reporting a bare EOF for a crash. Deadline expiry is left
// alone — it is the caller's deadline verdict, not a death report.
func (t *procCtlTransport) deathVerdict(err error) error {
	if err == nil || t.closing.Load() ||
		errors.Is(err, ErrSentinelDied) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return err
	}
	if waitErr, dead := t.mon.exited(); dead {
		return sentinelDeath(waitErr)
	}
	return err
}

func (t *procCtlTransport) readAt(p []byte, off int64) (int, error) {
	if n, err, ok := t.pf.readAt(p, off); ok {
		return n, err
	}
	n, err := t.muxReadAt(p, off)
	if err == nil || errors.Is(err, io.EOF) {
		t.pf.afterRead(off, n, len(p), errors.Is(err, io.EOF))
	}
	return n, err
}

// muxReadAt reads through the control channel, chunked to the frame payload
// bound — the window-miss path, and the prefetcher's fill source.
func (t *procCtlTransport) muxReadAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > wire.MaxPayload {
			chunk = wire.MaxPayload
		}
		// The response payload lands straight in the caller's slice.
		resp, err := t.roundTrip(
			&wire.Request{Op: wire.OpRead, Off: off + int64(total), N: int64(chunk)},
			p[total:total+chunk],
		)
		if err != nil {
			return total, err
		}
		n := len(resp.Data)
		total += n
		if werr := wire.ToError(wire.OpRead, resp.Status, resp.Msg); werr != nil {
			return total, werr
		}
		if n == 0 {
			break
		}
	}
	return total, nil
}

func (t *procCtlTransport) writeAt(p []byte, off int64) (int, error) {
	defer t.pf.invalidate() // written content may overlap the window
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > wire.MaxPayload {
			chunk = wire.MaxPayload
		}
		// "write N" on the control channel, then N bytes on the write pipe;
		// no acknowledgement — failures surface on the next sync/close. The
		// mux keeps command and payload order aligned across goroutines.
		req := wire.Request{Op: wire.OpWrite, Off: off + int64(total), N: int64(chunk)}
		if err := t.mux.Post(&req, p[total:total+chunk]); err != nil {
			return total, t.deathVerdict(err)
		}
		total += chunk
	}
	return total, nil
}

func (t *procCtlTransport) size() (int64, error) {
	resp, err := t.roundTrip(&wire.Request{Op: wire.OpSize}, nil)
	if err != nil {
		return 0, err
	}
	return resp.N, wire.ToError(wire.OpSize, resp.Status, resp.Msg)
}

func (t *procCtlTransport) truncate(n int64) error {
	defer t.pf.invalidate()
	resp, err := t.roundTrip(&wire.Request{Op: wire.OpTruncate, Off: n}, nil)
	if err != nil {
		return err
	}
	return wire.ToError(wire.OpTruncate, resp.Status, resp.Msg)
}

func (t *procCtlTransport) sync() error {
	resp, err := t.roundTrip(&wire.Request{Op: wire.OpSync}, nil)
	if err != nil {
		return err
	}
	return wire.ToError(wire.OpSync, resp.Status, resp.Msg)
}

func (t *procCtlTransport) lock(off, n int64) error {
	resp, err := t.roundTrip(&wire.Request{Op: wire.OpLock, Off: off, N: n}, nil)
	if err != nil {
		return err
	}
	return wire.ToError(wire.OpLock, resp.Status, resp.Msg)
}

func (t *procCtlTransport) unlock(off, n int64) error {
	resp, err := t.roundTrip(&wire.Request{Op: wire.OpUnlock, Off: off, N: n}, nil)
	if err != nil {
		return err
	}
	return wire.ToError(wire.OpUnlock, resp.Status, resp.Msg)
}

func (t *procCtlTransport) control(req []byte) ([]byte, error) {
	defer t.pf.invalidate() // the program may mutate content out of band
	resp, err := t.roundTrip(&wire.Request{Op: wire.OpControl, Data: req}, nil)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(resp.Data))
	copy(out, resp.Data)
	return out, wire.ToError(wire.OpControl, resp.Status, resp.Msg)
}

func (t *procCtlTransport) close() error {
	t.closing.Store(true)
	resp, rtErr := t.roundTrip(&wire.Request{Op: wire.OpClose}, nil)
	t.mux.Close()
	t.conn.Close()
	if t.lane != nil {
		// Lane session: hand the lane back and leave. The shared sentinel
		// keeps serving every other lane; only the hub (or its death) reaps
		// it. The close barrier above already settled this session's writes.
		if rtErr != nil {
			if waitErr, dead := t.mon.exited(); dead {
				return sentinelDeath(waitErr)
			}
			return rtErr
		}
		return wire.ToError(wire.OpClose, resp.Status, resp.Msg)
	}
	waitErr := t.mon.reap()
	if t.poolN > 0 {
		// Recycle point: replace whatever this session consumed from the
		// warm pool (or prime it after a cold first open), off the open path.
		procPool.ensure(t.poolPath, t.poolM, t.poolN)
	}
	switch {
	case rtErr != nil && (errors.Is(rtErr, io.EOF) || errors.Is(rtErr, ErrSentinelDied)):
		// Child already exited; its wait status is the verdict.
		return waitErr
	case rtErr != nil:
		return rtErr
	default:
		if err := wire.ToError(wire.OpClose, resp.Status, resp.Msg); err != nil {
			return err
		}
		return waitErr
	}
}
