package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"

	"repro/internal/ipc"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// Environment variables carrying the session description to a sentinel
// subprocess (the analogue of the stub "passing the created process the name
// of the data part", §4.1).
const (
	envChildMarker = "AF_SENTINEL_CHILD"
	envManifest    = "AF_MANIFEST"
	envStrategy    = "AF_STRATEGY"
)

// childWaitTimeout bounds how long Close waits for a sentinel subprocess to
// exit before killing it.
const childWaitTimeout = 5 * time.Second

// spawnSentinel starts the sentinel subprocess for manifestPath with the
// pipe layout of the given strategy. When the manifest names an external
// executable it is run directly; otherwise the current binary is re-executed
// in child mode (the offline substitute for a separate sentinel image).
func spawnSentinel(manifestPath string, m vfs.Manifest, strategy Strategy) (*exec.Cmd, *ipc.ChannelFiles, error) {
	cf, err := ipc.NewChannelFiles(strategy == StrategyProcCtl)
	if err != nil {
		return nil, nil, err
	}

	var cmd *exec.Cmd
	if m.Program.Exec != "" {
		cmd = exec.Command(m.Program.Exec, m.Program.Args...)
	} else {
		self, err := os.Executable()
		if err != nil {
			cf.Close()
			return nil, nil, fmt.Errorf("locate own executable: %w", err)
		}
		cmd = exec.Command(self)
	}
	cmd.Env = append(os.Environ(),
		envChildMarker+"=1",
		envManifest+"="+manifestPath,
		envStrategy+"="+strategy.String(),
	)
	cmd.ExtraFiles = cf.ChildFiles()
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		cf.Close()
		return nil, nil, fmt.Errorf("start sentinel process: %w", err)
	}
	cf.CloseChildEnds()
	return cmd, cf, nil
}

// waitChild reaps the subprocess, killing it if it outlives the timeout.
func waitChild(cmd *exec.Cmd) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(childWaitTimeout):
		cmd.Process.Kill()
		return <-done
	}
}

// processTransport is the client side of the plain process strategy (§4.1):
// two data pipes, no control channel. Reads pull the next bytes of the
// sentinel's output stream; writes push onto its input stream; everything
// else is unsupported.
type processTransport struct {
	cmd *exec.Cmd
	cf  *ipc.ChannelFiles
}

var _ transport = (*processTransport)(nil)

func newProcessTransport(manifestPath string, m vfs.Manifest) (*processTransport, error) {
	cmd, cf, err := spawnSentinel(manifestPath, m, StrategyProcess)
	if err != nil {
		return nil, err
	}
	return &processTransport{cmd: cmd, cf: cf}, nil
}

func (t *processTransport) readAt(p []byte, _ int64) (int, error) {
	return t.cf.FromChild.Read(p)
}

func (t *processTransport) writeAt(p []byte, _ int64) (int, error) {
	return t.cf.ToChild.Write(p)
}

func (t *processTransport) size() (int64, error)    { return 0, wire.ErrUnsupported }
func (t *processTransport) truncate(int64) error    { return wire.ErrUnsupported }
func (t *processTransport) sync() error             { return wire.ErrUnsupported }
func (t *processTransport) lock(_, _ int64) error   { return wire.ErrUnsupported }
func (t *processTransport) unlock(_, _ int64) error { return wire.ErrUnsupported }
func (t *processTransport) control([]byte) ([]byte, error) {
	return nil, wire.ErrUnsupported
}

func (t *processTransport) close() error {
	// Closing our pipe ends delivers EOF to the sentinel's writer loop and
	// EPIPE to its reader loop; it then flushes and exits.
	t.cf.Close()
	if err := waitChild(t.cmd); err != nil {
		var exitErr *exec.ExitError
		if errors.As(err, &exitErr) {
			return fmt.Errorf("sentinel process: %w", err)
		}
		return err
	}
	return nil
}

// procCtlTransport is the client side of the process-plus-control strategy
// (§4.2): requests travel as commands on the control pipe; read results
// return as frames on the read pipe; write payloads stream down the write
// pipe without waiting for completion, exactly the asymmetry Figure 6
// measures ("writes are issued without waiting for their completion"). The
// pipe pair is driven through an ipc.Mux, so any number of goroutines keep
// exchanges in flight concurrently, correlated by Seq rather than lockstep
// ordering.
type procCtlTransport struct {
	cmd *exec.Cmd
	cf  *ipc.ChannelFiles
	mux *ipc.Mux
	pf  *prefetcher // client-side read-ahead; nil when opted out
}

var _ transport = (*procCtlTransport)(nil)

func newProcCtlTransport(manifestPath string, m vfs.Manifest) (*procCtlTransport, error) {
	cmd, cf, err := spawnSentinel(manifestPath, m, StrategyProcCtl)
	if err != nil {
		return nil, err
	}
	t := &procCtlTransport{
		cmd: cmd,
		cf:  cf,
		mux: ipc.NewMux(cf.CtrlToChild, cf.FromChild, cf.ToChild),
	}
	if m.Params["readahead"] != "false" {
		// Client-side window: sequential reads are answered by a memcpy out
		// of the window while an async fill — pipelined on the mux — keeps
		// it ahead of the application. This is where the pipe round trip
		// leaves the per-read critical path entirely.
		t.pf = newPrefetcher(t.muxReadAt, true)
	}
	return t, nil
}

func (t *procCtlTransport) readAt(p []byte, off int64) (int, error) {
	if n, err, ok := t.pf.readAt(p, off); ok {
		return n, err
	}
	n, err := t.muxReadAt(p, off)
	if err == nil || errors.Is(err, io.EOF) {
		t.pf.afterRead(off, n, len(p), errors.Is(err, io.EOF))
	}
	return n, err
}

// muxReadAt reads through the control channel, chunked to the frame payload
// bound — the window-miss path, and the prefetcher's fill source.
func (t *procCtlTransport) muxReadAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > wire.MaxPayload {
			chunk = wire.MaxPayload
		}
		// The response payload lands straight in the caller's slice.
		resp, err := t.mux.RoundTrip(
			&wire.Request{Op: wire.OpRead, Off: off + int64(total), N: int64(chunk)},
			p[total:total+chunk],
		)
		if err != nil {
			return total, err
		}
		n := len(resp.Data)
		total += n
		if werr := wire.ToError(wire.OpRead, resp.Status, resp.Msg); werr != nil {
			return total, werr
		}
		if n == 0 {
			break
		}
	}
	return total, nil
}

func (t *procCtlTransport) writeAt(p []byte, off int64) (int, error) {
	defer t.pf.invalidate() // written content may overlap the window
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > wire.MaxPayload {
			chunk = wire.MaxPayload
		}
		// "write N" on the control channel, then N bytes on the write pipe;
		// no acknowledgement — failures surface on the next sync/close. The
		// mux keeps command and payload order aligned across goroutines.
		req := wire.Request{Op: wire.OpWrite, Off: off + int64(total), N: int64(chunk)}
		if err := t.mux.Post(&req, p[total:total+chunk]); err != nil {
			return total, err
		}
		total += chunk
	}
	return total, nil
}

func (t *procCtlTransport) size() (int64, error) {
	resp, err := t.mux.RoundTrip(&wire.Request{Op: wire.OpSize}, nil)
	if err != nil {
		return 0, err
	}
	return resp.N, wire.ToError(wire.OpSize, resp.Status, resp.Msg)
}

func (t *procCtlTransport) truncate(n int64) error {
	defer t.pf.invalidate()
	resp, err := t.mux.RoundTrip(&wire.Request{Op: wire.OpTruncate, Off: n}, nil)
	if err != nil {
		return err
	}
	return wire.ToError(wire.OpTruncate, resp.Status, resp.Msg)
}

func (t *procCtlTransport) sync() error {
	resp, err := t.mux.RoundTrip(&wire.Request{Op: wire.OpSync}, nil)
	if err != nil {
		return err
	}
	return wire.ToError(wire.OpSync, resp.Status, resp.Msg)
}

func (t *procCtlTransport) lock(off, n int64) error {
	resp, err := t.mux.RoundTrip(&wire.Request{Op: wire.OpLock, Off: off, N: n}, nil)
	if err != nil {
		return err
	}
	return wire.ToError(wire.OpLock, resp.Status, resp.Msg)
}

func (t *procCtlTransport) unlock(off, n int64) error {
	resp, err := t.mux.RoundTrip(&wire.Request{Op: wire.OpUnlock, Off: off, N: n}, nil)
	if err != nil {
		return err
	}
	return wire.ToError(wire.OpUnlock, resp.Status, resp.Msg)
}

func (t *procCtlTransport) control(req []byte) ([]byte, error) {
	defer t.pf.invalidate() // the program may mutate content out of band
	resp, err := t.mux.RoundTrip(&wire.Request{Op: wire.OpControl, Data: req}, nil)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(resp.Data))
	copy(out, resp.Data)
	return out, wire.ToError(wire.OpControl, resp.Status, resp.Msg)
}

func (t *procCtlTransport) close() error {
	resp, rtErr := t.mux.RoundTrip(&wire.Request{Op: wire.OpClose}, nil)
	t.mux.Close()
	t.cf.Close()
	waitErr := waitChild(t.cmd)
	switch {
	case rtErr != nil && errors.Is(rtErr, io.EOF):
		// Child already exited; its wait status is the verdict.
		return waitErr
	case rtErr != nil:
		return rtErr
	default:
		if err := wire.ToError(wire.OpClose, resp.Status, resp.Msg); err != nil {
			return err
		}
		return waitErr
	}
}
