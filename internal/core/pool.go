package core

import (
	"sync"

	"repro/internal/wire"
)

// pooledBufSize is the size of recycled read buffers. One pooled buffer
// serves any read up to 64 KiB — far beyond the paper's 2 KiB top block
// size — while keeping an idle session's footprint bounded, unlike the old
// grow-only dispatcher buffer that crept up to the largest read ever seen.
const pooledBufSize = 64 * 1024

// readBufPool recycles read buffers across concurrent dispatches and
// sessions. Pointers avoid an allocation per Put.
var readBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, pooledBufSize)
		return &b
	},
}

// getReadBuf returns a zeroable buffer of length n (n ≤ wire.MaxPayload) and
// the release function that recycles it. Requests beyond the pooled size are
// served by a one-shot allocation whose release is a no-op, so pooled
// buffers never exceed pooledBufSize (and, a fortiori, wire.MaxPayload):
// oversized buffers are dropped on return instead of parked in the pool.
func getReadBuf(n int) ([]byte, func()) {
	if n <= pooledBufSize {
		bp := readBufPool.Get().(*[]byte)
		return (*bp)[:n], func() { putReadBuf(bp) }
	}
	return make([]byte, n), func() {}
}

// putReadBuf recycles a pooled buffer, dropping any that grew past the
// payload bound (defensive — getReadBuf never hands those out).
func putReadBuf(bp *[]byte) {
	if cap(*bp) > wire.MaxPayload {
		return
	}
	*bp = (*bp)[:cap(*bp)]
	readBufPool.Put(bp)
}
