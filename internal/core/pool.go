package core

import (
	"context"
	"fmt"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"repro/internal/ipc"
	"repro/internal/shm"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// The warm sentinel pool removes fork+exec from the procctl open path. A
// manifest opting in (param "pool"=N) keeps up to N idle pre-spawned
// sentinels; Open adopts one and rebinds it with a single OpOpen handshake
// over the already-connected control pipes — a pipe round trip instead of a
// process launch. The pool replenishes in the background after each take,
// so steady open/close churn keeps finding warm children.

// poolHandshakeTimeout bounds the OpOpen rebind exchange with a warm
// sentinel. A child that cannot answer within this window is discarded and
// the open falls back to a cold spawn, so a wedged pool entry can only delay
// an open, never hang it.
const poolHandshakeTimeout = 5 * time.Second

// poolParam parses the manifest's warm-pool size (param "pool"; absent or
// "0" disables pooling).
func poolParam(m vfs.Manifest) (int, error) {
	v := m.Params["pool"]
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("core: bad pool param %q", v)
	}
	return n, nil
}

// pooledSentinel is one idle pre-spawned procctl child: started, conduits
// connected (pipes, plus a mapped shm segment when the manifest selects the
// ring carrier), program NOT yet opened — it is blocked reading the command
// stream for the OpOpen handshake (or EOF). Adoption hands the whole
// conduit set to the transport, so the rebind rides the same rings the
// session will.
type pooledSentinel struct {
	cmd      *exec.Cmd
	cf       *ipc.ChannelFiles
	seg      *shm.Segment // nil on the pipe carrier
	fallback string       // shm→pipe demotion reason recorded at spawn
	mon      *childMonitor
}

// closeConduits releases the parent-side pipes and, for a ring-carrier
// entry, the segment. Closing the pipes first matters: a shm child parks on
// its command ring, and it is the control pipe's EOF — its parent-liveness
// watchdog — that tells it to close its own segment view and exit.
func (ps *pooledSentinel) closeConduits() {
	ps.cf.Close()
	if ps.seg != nil {
		ps.seg.Close()
	}
}

// shutdown retires an idle sentinel: closing the parent conduit ends
// delivers EOF, on which a pooled child exits cleanly.
func (ps *pooledSentinel) shutdown() {
	ps.closeConduits()
	ps.mon.reap()
}

// awaitReady blocks until the child announces (Seq-0 StatusOK beacon) that it
// has booted and parked on the control channel. Parking only ready sentinels
// keeps adoption latency down to a pipe round trip — without this, an
// adoption right after a spawn would absorb the tail of exec+runtime init.
// A child that cannot produce the beacon within the handshake timeout is
// reported as unusable.
func (ps *pooledSentinel) awaitReady() error {
	deadline := ps.cf.FromChild.SetReadDeadline(time.Now().Add(poolHandshakeTimeout)) == nil
	resp, err := wire.NewReader(ps.cf.FromChild).ReadResponse()
	if deadline {
		ps.cf.FromChild.SetReadDeadline(time.Time{})
	}
	if err != nil {
		return fmt.Errorf("core: pool sentinel never became ready: %w", err)
	}
	if resp.Seq != 0 || resp.Status != wire.StatusOK {
		return fmt.Errorf("core: pool sentinel sent %v/%d instead of ready beacon", resp.Status, resp.Seq)
	}
	return nil
}

// sentinelPool holds idle warm sentinels keyed by manifest path.
type sentinelPool struct {
	mu       sync.Mutex
	idle     map[string][]*pooledSentinel
	spawning map[string]int // background spawns in flight per manifest
	draining bool
	wg       sync.WaitGroup // outstanding background spawns
}

// procPool is the process-wide warm pool. Sentinels are keyed by manifest
// path, so two opens of different active files never trade children.
var procPool = &sentinelPool{
	idle:     make(map[string][]*pooledSentinel),
	spawning: make(map[string]int),
}

// acquire pops an idle live sentinel for path, discarding any that died
// while parked. Returns nil when the pool has none.
func (p *sentinelPool) acquire(path string) *pooledSentinel {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.idle[path]
	for len(q) > 0 {
		ps := q[len(q)-1]
		q = q[:len(q)-1]
		p.idle[path] = q
		if _, dead := ps.mon.exited(); dead {
			ps.closeConduits() // dead while parked; already reaped by monitor
			continue
		}
		return ps
	}
	return nil
}

// ensure tops the pool up toward want idle sentinels for path, spawning the
// shortfall in the background so the caller's open is never charged for it.
func (p *sentinelPool) ensure(path string, m vfs.Manifest, want int) {
	p.mu.Lock()
	need := 0
	if !p.draining {
		need = want - len(p.idle[path]) - p.spawning[path]
	}
	if need > 0 {
		p.spawning[path] += need
		p.wg.Add(need)
	}
	p.mu.Unlock()
	for i := 0; i < need; i++ {
		go p.spawnOne(path, m)
	}
}

// spawnOne starts one warm sentinel and parks it as idle (or shuts it down
// if the pool is draining, or abandons quietly on spawn failure — the next
// cold open will surface any persistent problem).
func (p *sentinelPool) spawnOne(path string, m vfs.Manifest) {
	defer p.wg.Done()
	ps, err := spawnPooled(path, m)
	p.mu.Lock()
	p.spawning[path]--
	if err != nil {
		p.mu.Unlock()
		return
	}
	if p.draining {
		p.mu.Unlock()
		ps.shutdown()
		return
	}
	p.park(path, ps)
	p.mu.Unlock()
}

// park registers ps as idle for path and arms its death hook to self-evict.
// Called with p.mu held.
func (p *sentinelPool) park(path string, ps *pooledSentinel) {
	p.idle[path] = append(p.idle[path], ps)
	ps.mon.setOnDeath(func(error) { p.evict(path, ps) })
}

// evict removes a parked sentinel that died idle. A no-op when the entry was
// already acquired (the adopter's death hook has taken over by then).
func (p *sentinelPool) evict(path string, ps *pooledSentinel) {
	p.mu.Lock()
	q := p.idle[path]
	for i, cand := range q {
		if cand == ps {
			p.idle[path] = append(q[:i], q[i+1:]...)
			p.mu.Unlock()
			ps.closeConduits()
			return
		}
	}
	p.mu.Unlock()
}

// idleCount reports how many warm sentinels are parked for path.
func (p *sentinelPool) idleCount(path string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle[path])
}

// drain retires every idle sentinel and waits out in-flight background
// spawns (which self-retire). The pool is usable again afterwards.
func (p *sentinelPool) drain() {
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
	p.wg.Wait() // in-flight spawns observe draining and shut themselves down

	p.mu.Lock()
	all := p.idle
	p.idle = make(map[string][]*pooledSentinel)
	p.draining = false
	p.mu.Unlock()
	for _, q := range all {
		for _, ps := range q {
			ps.shutdown()
		}
	}
}

// spawnPooled starts one warm procctl sentinel for path and waits for its
// ready beacon: spawned with the pooled marker, the child loads the manifest,
// announces readiness, and parks on the control channel awaiting its OpOpen
// rebind.
func spawnPooled(path string, m vfs.Manifest) (*pooledSentinel, error) {
	cmd, cf, seg, fallback, err := spawnSentinel(path, m, StrategyProcCtl, envPooled+"=1")
	if err != nil {
		return nil, err
	}
	ps := &pooledSentinel{cmd: cmd, cf: cf, seg: seg, fallback: fallback}
	ps.mon = watchChild(cmd, nil)
	if err := ps.awaitReady(); err != nil {
		ps.cmd.Process.Kill()
		ps.shutdown()
		return nil, err
	}
	return ps, nil
}

// acquireWarmTransport tries to adopt a warm sentinel for manifestPath,
// returning (nil, false) when the pool is empty or the rebind handshake
// fails — the caller then cold-spawns as usual.
func acquireWarmTransport(manifestPath string, m vfs.Manifest, opTimeout time.Duration) (*procCtlTransport, bool) {
	ps := procPool.acquire(manifestPath)
	if ps == nil {
		return nil, false
	}
	t := &procCtlTransport{
		cmd:       ps.cmd,
		cf:        ps.cf,
		seg:       ps.seg,
		fallback:  ps.fallback,
		conn:      sessionConn(ps.cf, ps.seg),
		mon:       ps.mon,
		opTimeout: opTimeout,
	}
	if t.seg != nil {
		// New adoption generation: the segment's control-region epoch lets
		// either side (and post-mortem tests) tell a rebound session from the
		// pooled spawn it reuses.
		t.seg.AdvanceEpoch()
	}
	t.mux = ipc.NewMuxConn(t.conn)
	// Hand supervision from the pool to this transport. If the child died in
	// the instant between acquire and here, the hook fires immediately and
	// the handshake below fails fast instead of waiting out its timeout.
	// The adopted segment (if any) travels with the transport, so death
	// cleanup matches the cold-spawn path: poison, wake, unmap.
	ps.mon.setOnDeath(func(waitErr error) {
		if t.closing.Load() {
			return
		}
		t.mux.Fail(sentinelDeath(waitErr))
		if t.seg != nil {
			t.seg.Close()
		}
	})

	// Rebind: one pipe round trip replaces fork+exec+program-open. The child
	// opens its program on receipt and answers with the outcome.
	ctx, cancel := context.WithTimeout(context.Background(), poolHandshakeTimeout)
	resp, err := t.mux.RoundTripContext(ctx, &wire.Request{Op: wire.OpOpen}, nil)
	cancel()
	if err == nil {
		err = wire.ToError(wire.OpOpen, resp.Status, resp.Msg)
	}
	if err != nil {
		// Sour entry: discard it and let the caller cold-spawn, which will
		// also surface any deterministic program-open error properly.
		t.closing.Store(true)
		t.mux.Close()
		t.conn.Close()
		t.cmd.Process.Kill()
		t.mon.reap()
		return nil, false
	}
	if m.Params["readahead"] != "false" {
		t.pf = newPrefetcher(t.muxReadAt, true)
	}
	return t, true
}

// PrewarmSentinels synchronously fills the warm pool for the manifest at
// path up to its configured size (param "pool"), so subsequent Opens pay
// only the rebind handshake. It returns the number of idle sentinels parked.
// Manifests without a pool param are a no-op.
func PrewarmSentinels(path string) (int, error) {
	m, err := vfs.Load(path)
	if err != nil {
		return 0, fmt.Errorf("core: prewarm: %w", err)
	}
	want, err := poolParam(m)
	if err != nil {
		return 0, err
	}
	for procPool.idleCount(path) < want {
		ps, err := spawnPooled(path, m)
		if err != nil {
			return procPool.idleCount(path), err
		}
		procPool.mu.Lock()
		procPool.park(path, ps)
		procPool.mu.Unlock()
	}
	return procPool.idleCount(path), nil
}

// DrainSentinelPool shuts down every idle warm sentinel. Benchmarks and
// tests call it to release pooled subprocesses deterministically; the pool
// re-warms on the next pooled Open.
func DrainSentinelPool() {
	procPool.drain()
}

// IdleSentinels reports how many warm sentinels are parked for the manifest
// at path — observability for churn benchmarks and tests.
func IdleSentinels(path string) int {
	return procPool.idleCount(path)
}
