package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"

	"repro/internal/shm"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// The lane sentinel: one child process serving every session multiplexed on
// a shared MPSC segment. A single intake goroutine drains the command queue
// and demultiplexes records by lane into per-lane byte queues; each lane
// then runs the ordinary serveControl loop against its own handler, so the
// per-session protocol — barriers, write ordering, deferred errors — is
// byte-for-byte the one a dedicated sentinel speaks.

// attachChildMPSC maps the shared segment a parent advertised via
// envShmLanes from the inherited descriptors (same slots as the classic
// segment: fd 6 plus four doorbells).
func attachChildMPSC() (*shm.MPSCSegment, error) {
	segFile := os.NewFile(childFDShmSeg, "af-shm-seg")
	if segFile == nil {
		return nil, fmt.Errorf("core: shm segment fd not inherited")
	}
	bells := make([]*os.File, 4)
	for i := range bells {
		bells[i] = os.NewFile(uintptr(childFDShmBells+i), "af-shm-doorbell")
	}
	seg, err := shm.AttachMPSC(segFile, bells)
	if err != nil {
		return nil, fmt.Errorf("core: attach shm lane segment: %w", err)
	}
	return seg, nil
}

// laneStreams is one lane's demultiplexed intake: command frames and posted
// write payloads, split exactly the way a dedicated sentinel sees its
// control pipe and data-in pipe.
type laneStreams struct {
	cmdQ  *byteQueue
	dataQ *byteQueue
}

func (l *laneStreams) closeBoth() {
	l.cmdQ.close(nil)
	l.dataQ.close(nil)
}

// runLaneChild is the sentinel body for a lane-serving child. It attaches
// the shared segment, announces readiness on the data-out pipe (the same
// beacon a warm-pool child sends), then demultiplexes the command queue
// until the parent closes the segment or the watchdog fires.
func runLaneChild(m vfs.Manifest, openProgram func() (Handler, error), out, ctrl *os.File) error {
	seg, err := attachChildMPSC()
	if err != nil {
		return err
	}
	defer seg.Close()
	// Parent liveness: the control pipe carries no frames on the lane plane;
	// its EOF means the parent is gone, and closing the segment unparks the
	// intake loop below with a terminal error.
	go func() {
		var buf [1]byte
		ctrl.Read(buf[:])
		seg.Close()
	}()
	if err := wire.NewWriter(out).WriteResponse(&wire.Response{Status: wire.StatusOK}); err != nil {
		return fmt.Errorf("lane ready beacon: %w", err)
	}

	node := -1
	if v := os.Getenv(envShmNode); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			node = n
		}
	}
	opts := ctrlOptions{
		readAhead:   m.Params["readahead"] != "false",
		writeBehind: m.Params["writebehind"] == "true",
	}

	lanes := make(map[uint16]*laneStreams)
	var wg sync.WaitGroup
	cmd := seg.Cmd()
	// The intake loop is the segment's single command consumer; pinning it
	// to the segment's node keeps its cursor and payload reads on-package.
	shm.PinConsumer(node, func() {
		for {
			err := cmd.Drain(func(lane uint16, kind shm.RecordKind, payload []byte) {
				l := lanes[lane]
				if kind == shm.RecordEOS {
					// Session gone. End the lane's streams; its server
					// finishes and answers with the reply-EOS that lets the
					// parent reuse the lane. A lane that never started gets
					// the reply-EOS directly, so it cannot park in draining
					// forever.
					if l != nil {
						l.closeBoth()
						delete(lanes, lane)
					} else {
						seg.Reply().SendEOS(lane)
					}
					return
				}
				if l == nil {
					l = &laneStreams{cmdQ: newByteQueue(), dataQ: newByteQueue()}
					lanes[lane] = l
					wg.Add(1)
					go func(lane uint16, l *laneStreams) {
						defer wg.Done()
						serveLane(seg, lane, l, openProgram, opts)
					}(lane, l)
				}
				switch kind {
				case shm.RecordFrame:
					l.cmdQ.write(payload)
				case shm.RecordData:
					l.dataQ.write(payload)
				}
			})
			if err != nil {
				return // segment closed: parent drained the plane or died
			}
		}
	})
	for _, l := range lanes {
		l.closeBoth()
	}
	wg.Wait()
	return nil
}

// serveLane runs one session: the OpOpen handshake (mirroring the warm-pool
// rebind — open the program, answer with the outcome), then the standard
// serveControl loop over the lane's demultiplexed streams, and finally the
// reply-EOS that marks the lane quiesced. The EOS rides the same producer
// path as the responses, so it is ordered after every reply of the session.
func serveLane(seg *shm.MPSCSegment, lane uint16, l *laneStreams, open func() (Handler, error), opts ctrlOptions) {
	defer seg.Reply().SendEOS(lane)
	resps := seg.Reply().Producer(lane, shm.RecordFrame)
	// A fresh frame reader is safe here for the same reason as the pool
	// handshake: wire.Reader never reads ahead, so serveControl's own reader
	// resumes at the next frame boundary.
	reqs := wire.NewReader(l.cmdQ)
	req, _, err := reqs.ReadRequestHeader()
	if err != nil {
		return // EOF before open: the session was released unused
	}
	if err := reqs.DiscardPayload(); err != nil {
		return
	}
	w := wire.NewWriter(resps)
	if req.Op != wire.OpOpen {
		w.WriteResponse(&wire.Response{Seq: req.Seq, Status: wire.StatusError,
			Msg: fmt.Sprintf("lane handshake: unexpected %s before open", req.Op)})
		return
	}
	handler, oerr := open()
	resp := wire.Response{Seq: req.Seq, Status: wire.StatusOK}
	if oerr != nil {
		resp.Status, resp.Msg = wire.FromError(oerr)
		if resp.Status == wire.StatusOK {
			resp.Status = wire.StatusError
		}
	}
	if werr := w.WriteResponse(&resp); werr != nil || oerr != nil {
		if handler != nil {
			handler.Close()
		}
		return
	}
	if err := serveControl(handler, l.dataQ, resps, l.cmdQ, opts); err != nil &&
		!errors.Is(err, io.EOF) && !errors.Is(err, shm.ErrClosed) {
		fmt.Fprintf(os.Stderr, "af lane sentinel: lane %d: %v\n", lane, err)
	}
}
