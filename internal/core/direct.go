package core

// directTransport implements the DLL-only strategy (§4.4): file operations
// are routed straight into the sentinel program's routines — no pipe, no
// goroutine switch, no extra copy. This is the paper's most efficient
// implementation, "incurring the same costs as if the application were
// directly accessing the information sources". Calls go through the
// dispatcher's zero-copy accessors so concurrent handle operations stay
// serialized at the handler boundary, same as every other strategy.
type directTransport struct {
	d *dispatcher
}

var _ transport = (*directTransport)(nil)

func newDirectTransport(h Handler, writeBehind bool) *directTransport {
	t := &directTransport{d: newDispatcher(h)}
	if writeBehind {
		t.d.enableWriteBehind()
	}
	return t
}

func (t *directTransport) readAt(p []byte, off int64) (int, error) {
	return t.d.readAt(p, off)
}

func (t *directTransport) writeAt(p []byte, off int64) (int, error) {
	return t.d.writeAt(p, off)
}

func (t *directTransport) size() (int64, error) { return t.d.size() }

func (t *directTransport) truncate(n int64) error { return t.d.truncate(n) }

func (t *directTransport) sync() error { return t.d.sync() }

func (t *directTransport) lock(off, n int64) error { return t.d.lock(off, n) }

func (t *directTransport) unlock(off, n int64) error { return t.d.unlock(off, n) }

func (t *directTransport) control(req []byte) ([]byte, error) { return t.d.control(req) }

func (t *directTransport) close() error { return t.d.closeHandler() }
