package core

import "repro/internal/wire"

// directTransport implements the DLL-only strategy (§4.4): file operations
// are routed straight into the sentinel program's routines — no pipe, no
// goroutine switch, no extra copy. This is the paper's most efficient
// implementation, "incurring the same costs as if the application were
// directly accessing the information sources".
type directTransport struct {
	handler Handler
}

var _ transport = (*directTransport)(nil)

func newDirectTransport(h Handler) *directTransport {
	return &directTransport{handler: h}
}

func (t *directTransport) readAt(p []byte, off int64) (int, error) {
	return t.handler.ReadAt(p, off)
}

func (t *directTransport) writeAt(p []byte, off int64) (int, error) {
	return t.handler.WriteAt(p, off)
}

func (t *directTransport) size() (int64, error) { return t.handler.Size() }

func (t *directTransport) truncate(n int64) error { return t.handler.Truncate(n) }

func (t *directTransport) sync() error { return t.handler.Sync() }

func (t *directTransport) lock(off, n int64) error {
	if l, ok := t.handler.(Locker); ok {
		return l.Lock(off, n)
	}
	return wire.ErrUnsupported
}

func (t *directTransport) unlock(off, n int64) error {
	if l, ok := t.handler.(Locker); ok {
		return l.Unlock(off, n)
	}
	return wire.ErrUnsupported
}

func (t *directTransport) control(req []byte) ([]byte, error) {
	if c, ok := t.handler.(Controller); ok {
		return c.Control(req)
	}
	return nil, wire.ErrUnsupported
}

func (t *directTransport) close() error { return t.handler.Close() }
