package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/vfs"
	"repro/internal/wire"
)

// Child-side file descriptors, in the order ipc.ChannelFiles passes them.
const (
	childFDRead  = 3 // application data flowing in (our "stdin" pipe)
	childFDWrite = 4 // data/responses flowing back to the application
	childFDCtrl  = 5 // control commands (process-plus-control only)
)

// RunChildIfRequested turns the current process into a sentinel if it was
// spawned as one (the environment marker is set). Binaries that can host
// process-strategy sentinels — including test binaries, via TestMain — must
// call this before doing anything else; it never returns in a child.
func RunChildIfRequested() {
	if os.Getenv(envChildMarker) == "" {
		return
	}
	if err := runChild(); err != nil {
		fmt.Fprintln(os.Stderr, "af sentinel:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// runChild loads the session description from the environment, opens the
// program, and serves until the application closes the file.
func runChild() error {
	manifestPath := os.Getenv(envManifest)
	if manifestPath == "" {
		return errors.New("no manifest in environment")
	}
	strategy, err := ParseStrategy(os.Getenv(envStrategy))
	if err != nil {
		return err
	}
	m, err := vfs.Load(manifestPath)
	if err != nil {
		return fmt.Errorf("load manifest: %w", err)
	}
	program, err := LookupProgram(m.Program.Name)
	if err != nil {
		return err
	}
	openProgram := func() (Handler, error) {
		h, oerr := program.Open(&Env{Path: manifestPath, Manifest: m})
		if oerr != nil {
			return nil, fmt.Errorf("open program %q: %w", m.Program.Name, oerr)
		}
		return h, nil
	}

	in := os.NewFile(childFDRead, "af-data-in")
	out := os.NewFile(childFDWrite, "af-data-out")
	if in == nil || out == nil {
		return errors.New("sentinel data pipes not inherited")
	}

	switch strategy {
	case StrategyProcess:
		handler, err := openProgram()
		if err != nil {
			return err
		}
		return serveStream(handler, in, out)
	case StrategyProcCtl:
		ctrl := os.NewFile(childFDCtrl, "af-ctrl")
		if ctrl == nil {
			return errors.New("sentinel control pipe not inherited")
		}
		if os.Getenv(envShmLanes) != "" {
			// Shared-segment sentinel: serve every lane of the inherited
			// MPSC segment, each lane running the standard control loop
			// against its own handler instance.
			return runLaneChild(m, openProgram, out, ctrl)
		}
		opts := ctrlOptions{
			readAhead:   m.Params["readahead"] != "false",
			writeBehind: m.Params["writebehind"] == "true",
		}
		// Frame carriers. On the pipe transport, commands arrive on the
		// control pipe and responses leave on the data-out pipe. When the
		// parent announces a shared-memory segment, both streams move to the
		// rings; the control pipe goes quiet and is repurposed as a parent
		// liveness watchdog, and the data pipes keep carrying write payloads
		// (in) and the warm-pool ready beacon (out).
		cmds := io.Reader(ctrl)
		resps := io.Writer(out)
		if os.Getenv(envShm) != "" {
			seg, err := attachChildSegment()
			if err != nil {
				return err
			}
			defer seg.Close()
			cmds = seg.Cmd()
			resps = seg.Reply()
			watchParentViaCtrl(ctrl, seg)
		}
		// Drain-mode intake: one read syscall per wakeup pulls every command
		// frame the channel has ready (rings pass through — they drain
		// without syscalls). Wrapped exactly once, HERE, so the pool
		// handshake below and serveControl decode from the same buffer; a
		// second wrapper would strand buffered frames in the first.
		cmds, _ = wire.WrapDrain(cmds)
		var handler Handler
		if os.Getenv(envPooled) != "" {
			// Warm-pool child: the program opens only when a parent adopts
			// this sentinel, announced by an OpOpen rebind on the command
			// stream. A clean EOF instead means the pool drained us unused.
			handler, err = awaitPoolHandshake(cmds, out, resps, openProgram)
			if err != nil || handler == nil {
				return err
			}
		} else {
			if handler, err = openProgram(); err != nil {
				return err
			}
		}
		return serveControl(handler, in, resps, cmds, opts)
	default:
		return fmt.Errorf("strategy %v cannot run as a subprocess", strategy)
	}
}

// awaitPoolHandshake parks a warm-pool sentinel until the adopting parent
// sends its OpOpen rebind on the command stream, then opens the program and
// answers on the response stream with the outcome. It returns (nil, nil)
// when the command stream reaches EOF first — the pool retired this
// sentinel unused, a clean exit. beacon is where the ready announcement
// goes: always the data-out pipe, even when the session frames ride shm
// rings, because the pool's readiness wait uses a pipe read deadline to
// bound a child that never boots.
func awaitPoolHandshake(ctrl io.Reader, beacon, out io.Writer, open func() (Handler, error)) (Handler, error) {
	// Ready beacon (Seq 0): tells the pool this child has booted and is
	// parked on the control channel. The pool consumes it before parking the
	// entry, so an adoption's handshake latency is a pipe round trip, never
	// the tail of exec+runtime-init.
	if err := wire.NewWriter(beacon).WriteResponse(&wire.Response{Status: wire.StatusOK}); err != nil {
		return nil, fmt.Errorf("pool ready beacon: %w", err)
	}
	resps := wire.NewWriter(out)
	// A fresh frame reader is safe here: wire.Reader never reads ahead of the
	// current frame, so serveControl's own reader picks up at the next frame
	// boundary after the handshake.
	reqs := wire.NewReader(ctrl)
	req, _, err := reqs.ReadRequestHeader()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, nil
		}
		return nil, fmt.Errorf("pool handshake: %w", err)
	}
	if err := reqs.DiscardPayload(); err != nil {
		return nil, fmt.Errorf("pool handshake: %w", err)
	}
	if req.Op != wire.OpOpen {
		return nil, fmt.Errorf("pool handshake: unexpected %s before open", req.Op)
	}
	handler, oerr := open()
	resp := wire.Response{Seq: req.Seq, Status: wire.StatusOK}
	if oerr != nil {
		resp.Status, resp.Msg = wire.FromError(oerr)
		if resp.Status == wire.StatusOK {
			resp.Status = wire.StatusError
		}
	}
	if werr := resps.WriteResponse(&resp); werr != nil {
		if handler != nil {
			handler.Close()
		}
		return nil, fmt.Errorf("pool handshake reply: %w", werr)
	}
	return handler, oerr
}

// serveStream is the plain-process sentinel loop, the shape of the paper's
// Figure 2 null filter: one thread streams session content to the
// application, another consumes the application's write stream. Read and
// write positions advance independently from zero; there is no control
// channel to reposition either. Each stream is strictly ordered — the
// strategy's contract — so the two goroutines stay sequential; they go
// through the dispatcher only so the reader and writer serialize against
// each other at the handler boundary.
func serveStream(handler Handler, in io.ReadCloser, out io.WriteCloser) error {
	d := newDispatcher(handler)
	var wg sync.WaitGroup
	errCh := make(chan error, 2)

	wg.Add(1)
	go func() { // supply application reads
		defer wg.Done()
		defer out.Close()
		buf := make([]byte, 32*1024)
		var off int64
		for {
			n, rerr := d.readAt(buf, off)
			if n > 0 {
				if _, werr := out.Write(buf[:n]); werr != nil {
					return // application stopped reading
				}
				off += int64(n)
			}
			if rerr != nil {
				if !errors.Is(rerr, io.EOF) {
					errCh <- fmt.Errorf("stream read: %w", rerr)
				}
				return
			}
			if n == 0 {
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // consume application writes
		defer wg.Done()
		buf := make([]byte, 32*1024)
		var off int64
		for {
			n, rerr := in.Read(buf)
			if n > 0 {
				if _, werr := d.writeAt(buf[:n], off); werr != nil {
					errCh <- fmt.Errorf("stream write: %w", werr)
					return
				}
				off += int64(n)
			}
			if rerr != nil {
				return // EOF: application closed its end
			}
		}
	}()

	wg.Wait()
	close(errCh)
	var first error
	for err := range errCh {
		if first == nil {
			first = err
		}
	}
	if cerr := d.closeHandler(); first == nil {
		first = cerr
	}
	return first
}

// controlWorkers is the size of the procctl sentinel's serving pool. Queued
// operations (reads and metadata) execute on the workers, so framing, pipe
// writes, and prefetch fills for one request overlap the handler call of the
// next — the server half of the client's Seq-pipelined mux.
const controlWorkers = 8

// ctrlOptions selects the procctl sentinel's data-path optimizations.
// Read-ahead defaults on (manifest param "readahead"="false" opts out);
// write coalescing defaults off (param "writebehind"="true" opts in).
type ctrlOptions struct {
	readAhead   bool
	writeBehind bool
}

// ctrlServer is the shared state of one serveControl session.
type ctrlServer struct {
	d        *dispatcher
	prefetch *prefetcher

	// resps group-commits response frames onto the data-out pipe: workers
	// finishing concurrently share one vectored write instead of queueing on
	// a mutex for one syscall each. WriteResponse returns only after the
	// flush carrying the frame, so pooled payload buffers release safely.
	resps *wire.BatchWriter

	failMu  sync.Mutex
	failErr error // first response-channel failure, reported by any worker
}

// writeResp frames one response onto the shared data-out pipe. A transport
// failure is recorded so the intake loop stops; only the first one counts.
func (s *ctrlServer) writeResp(resp *wire.Response) {
	if err := s.resps.WriteResponse(resp); err != nil {
		s.failMu.Lock()
		if s.failErr == nil {
			s.failErr = fmt.Errorf("response channel: %w", err)
		}
		s.failMu.Unlock()
	}
}

// failed reports the first recorded response-channel failure, if any.
func (s *ctrlServer) failed() error {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	return s.failErr
}

// serve handles one queued (non-write, non-barrier) operation on a worker.
func (s *ctrlServer) serve(req *wire.Request) {
	var resp wire.Response
	release := releaseNone
	fromWindow := false
	if req.Op == wire.OpRead {
		if r, ok := s.prefetch.serve(req, &resp); ok {
			// Served from the read-ahead window without touching the handler.
			release, fromWindow = r, true
		}
	}
	if !fromWindow {
		resp, release = s.d.dispatch(req)
		if req.Op == wire.OpTruncate {
			s.prefetch.invalidate()
		}
	}
	served := len(resp.Data)
	eof := resp.Status == wire.StatusEOF
	s.writeResp(&resp)
	release()
	if req.Op == wire.OpRead {
		// Record the access and extend the window while the application is
		// busy consuming this block; the fill runs on this worker, off the
		// reply's critical path.
		s.prefetch.afterRead(req.Off, served, int(req.N), eof)
	}
}

// serveControl is the process-plus-control sentinel loop: an intake thread
// blocks on the control channel, pulls write payloads off the
// data-in pipe, and fans every other command out to a small worker pool that
// ships responses (with any read data) back on the data-out pipe — out of
// order when operations overlap, correlated by Seq. Writes are not
// acknowledged; they execute on the intake thread before the next command is
// read, so a client that writes then reads observes its write, and write
// failures are carried to the next sync/close response. Sync and close are
// barriers: the intake thread drains the pool before dispatching them, so
// every earlier operation's effects — and any deferred write error — are
// settled in the response.
//
// With readAhead (the default), the sentinel anticipates sequential reads
// (§4.2: "the sentinel process might choose to eagerly inject data into the
// read pipe (anticipating read requests)"): an adaptive window grows from
// one block to prefetchMaxBlocks on confirmed sequential access, serving
// following reads without touching the handler on the critical path. With
// writeBehind, adjacent small writes coalesce into one backing WriteAt,
// flushed on sync/close barriers and overlapping reads.
func serveControl(handler Handler, in io.Reader, out io.Writer, ctrl io.Reader, opts ctrlOptions) error {
	reqs := wire.NewReader(ctrl)
	s := &ctrlServer{d: newDispatcher(handler), resps: wire.NewBatchWriter(out, nil)}
	if opts.writeBehind {
		s.d.enableWriteBehind()
	}
	if opts.readAhead {
		// Fills read through the dispatcher, so they serialize with the
		// handler's other callers and observe coalesced writes.
		s.prefetch = newPrefetcher(s.d.readAt, false)
	}

	// queued is one pooled operation: the request plus the release of the
	// pooled buffer holding its payload, invoked once the worker is done.
	type queued struct {
		req     wire.Request
		release func()
	}
	work := make(chan *queued, controlWorkers)
	var workers sync.WaitGroup
	var inflight sync.WaitGroup // operations queued but not yet answered
	workers.Add(controlWorkers)
	for i := 0; i < controlWorkers; i++ {
		go func() {
			defer workers.Done()
			for q := range work {
				s.serve(&q.req)
				q.release()
				inflight.Done()
			}
		}()
	}
	shutdown := func() {
		close(work)
		workers.Wait()
		s.d.closeHandler()
	}

	// pendingWriteErr is intake-thread-local: writes, sync, and close all
	// dispatch on this thread, so no lock guards it.
	var pendingWriteErr error
	payload := make([]byte, 0, 64*1024)

	for {
		if err := s.failed(); err != nil {
			// A worker lost the response channel: application vanished.
			shutdown()
			return err
		}
		req, payloadLen, err := reqs.ReadRequestHeader()
		if err != nil {
			// Control channel gone: application vanished without OpClose.
			shutdown()
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("control channel: %w", err)
		}

		switch req.Op {
		case wire.OpWrite:
			n := int(req.N)
			if n < 0 || n > wire.MaxPayload {
				// The announced payload can't be consumed, so the data pipe
				// is desynchronized from here on: every later payload would
				// be misattributed. Terminal, not a deferred write error.
				shutdown()
				return fmt.Errorf("write command announced bad payload size %d: data channel desynchronized", n)
			}
			// Write payloads travel on the data-in pipe, not the control
			// frame, and land in an intake-local scratch.
			if cap(payload) < n {
				payload = make([]byte, n)
			}
			if _, err := io.ReadFull(in, payload[:n]); err != nil {
				shutdown()
				return fmt.Errorf("write payload: %w", err)
			}
			wreq := req
			wreq.Data = payload[:n]
			resp, release := s.d.dispatch(&wreq)
			release()
			if werr := wire.ToError(wire.OpWrite, resp.Status, resp.Msg); werr != nil && pendingWriteErr == nil {
				pendingWriteErr = werr
			}
			s.prefetch.invalidate() // written content may overlap the window
			continue                // deliberately unacknowledged

		case wire.OpSync, wire.OpClose:
			if err := reqs.DiscardPayload(); err != nil {
				shutdown()
				return fmt.Errorf("control channel: %w", err)
			}
			inflight.Wait() // barrier: settle every outstanding operation
			resp, release := s.d.dispatch(&req)
			// Deferred write failures surface on the synchronous barrier.
			if resp.Status == wire.StatusOK && pendingWriteErr != nil {
				resp.Status, resp.Msg = wire.FromError(pendingWriteErr)
				pendingWriteErr = nil
			}
			s.writeResp(&resp)
			release()
			if req.Op == wire.OpClose {
				shutdown()
				return nil
			}

		default:
			// Queue for the pool, landing any control payload straight in a
			// pooled buffer the worker releases after serving. A full pool
			// exerts backpressure on intake — writes behind it in the
			// control stream stay correctly ordered anyway, since they
			// would dispatch on this thread.
			qreq := req
			release := releaseNone
			if payloadLen > 0 {
				buf, rel := wire.GetBuf(payloadLen)
				if err := reqs.ReadPayload(buf); err != nil {
					rel()
					shutdown()
					return fmt.Errorf("control channel: %w", err)
				}
				qreq.Data, release = buf, rel
			}
			inflight.Add(1)
			work <- &queued{req: qreq, release: release}
		}
	}
}
