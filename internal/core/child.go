package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/vfs"
	"repro/internal/wire"
)

// Child-side file descriptors, in the order ipc.ChannelFiles passes them.
const (
	childFDRead  = 3 // application data flowing in (our "stdin" pipe)
	childFDWrite = 4 // data/responses flowing back to the application
	childFDCtrl  = 5 // control commands (process-plus-control only)
)

// RunChildIfRequested turns the current process into a sentinel if it was
// spawned as one (the environment marker is set). Binaries that can host
// process-strategy sentinels — including test binaries, via TestMain — must
// call this before doing anything else; it never returns in a child.
func RunChildIfRequested() {
	if os.Getenv(envChildMarker) == "" {
		return
	}
	if err := runChild(); err != nil {
		fmt.Fprintln(os.Stderr, "af sentinel:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// runChild loads the session description from the environment, opens the
// program, and serves until the application closes the file.
func runChild() error {
	manifestPath := os.Getenv(envManifest)
	if manifestPath == "" {
		return errors.New("no manifest in environment")
	}
	strategy, err := ParseStrategy(os.Getenv(envStrategy))
	if err != nil {
		return err
	}
	m, err := vfs.Load(manifestPath)
	if err != nil {
		return fmt.Errorf("load manifest: %w", err)
	}
	program, err := LookupProgram(m.Program.Name)
	if err != nil {
		return err
	}
	handler, err := program.Open(&Env{Path: manifestPath, Manifest: m})
	if err != nil {
		return fmt.Errorf("open program %q: %w", m.Program.Name, err)
	}

	in := os.NewFile(childFDRead, "af-data-in")
	out := os.NewFile(childFDWrite, "af-data-out")
	if in == nil || out == nil {
		handler.Close()
		return errors.New("sentinel data pipes not inherited")
	}

	switch strategy {
	case StrategyProcess:
		return serveStream(handler, in, out)
	case StrategyProcCtl:
		ctrl := os.NewFile(childFDCtrl, "af-ctrl")
		if ctrl == nil {
			handler.Close()
			return errors.New("sentinel control pipe not inherited")
		}
		readAhead := m.Params["readahead"] == "true"
		return serveControl(handler, in, out, ctrl, readAhead)
	default:
		handler.Close()
		return fmt.Errorf("strategy %v cannot run as a subprocess", strategy)
	}
}

// serveStream is the plain-process sentinel loop, the shape of the paper's
// Figure 2 null filter: one thread streams session content to the
// application, another consumes the application's write stream. Read and
// write positions advance independently from zero; there is no control
// channel to reposition either.
func serveStream(handler Handler, in io.ReadCloser, out io.WriteCloser) error {
	var wg sync.WaitGroup
	errCh := make(chan error, 2)

	wg.Add(1)
	go func() { // supply application reads
		defer wg.Done()
		defer out.Close()
		buf := make([]byte, 32*1024)
		var off int64
		for {
			n, rerr := handler.ReadAt(buf, off)
			if n > 0 {
				if _, werr := out.Write(buf[:n]); werr != nil {
					return // application stopped reading
				}
				off += int64(n)
			}
			if rerr != nil {
				if !errors.Is(rerr, io.EOF) {
					errCh <- fmt.Errorf("stream read: %w", rerr)
				}
				return
			}
			if n == 0 {
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // consume application writes
		defer wg.Done()
		buf := make([]byte, 32*1024)
		var off int64
		for {
			n, rerr := in.Read(buf)
			if n > 0 {
				if _, werr := handler.WriteAt(buf[:n], off); werr != nil {
					errCh <- fmt.Errorf("stream write: %w", werr)
					return
				}
				off += int64(n)
			}
			if rerr != nil {
				return // EOF: application closed its end
			}
		}
	}()

	wg.Wait()
	close(errCh)
	var first error
	for err := range errCh {
		if first == nil {
			first = err
		}
	}
	if cerr := handler.Close(); first == nil {
		first = cerr
	}
	return first
}

// serveControl is the process-plus-control sentinel loop: a single dispatch
// thread blocks on the control channel, pulls write payloads off the data-in
// pipe, and ships responses (with any read data) back on the data-out pipe.
// Writes are not acknowledged; their failures are carried to the next
// sync/close response.
//
// With readAhead, the sentinel anticipates sequential reads (§4.2: "the
// sentinel process might choose to eagerly inject data into the read pipe
// (anticipating read requests)"): after each read it prefetches the next
// same-sized block, serving a following sequential read without touching the
// handler on the critical path.
func serveControl(handler Handler, in io.Reader, out io.Writer, ctrl io.Reader, readAhead bool) error {
	reqs := wire.NewReader(ctrl)
	resps := wire.NewWriter(out)
	d := newDispatcher(handler)

	var pendingWriteErr error
	payload := make([]byte, 0, 64*1024)
	var prefetch *prefetchState
	if readAhead {
		prefetch = &prefetchState{}
	}

	for {
		req, err := reqs.ReadRequest()
		if err != nil {
			// Control channel gone: application vanished without OpClose.
			handler.Close()
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("control channel: %w", err)
		}

		if req.Op == wire.OpWrite {
			n := int(req.N)
			if n < 0 || n > wire.MaxPayload {
				pendingWriteErr = fmt.Errorf("bad write size %d", n)
				continue
			}
			if cap(payload) < n {
				payload = make([]byte, n)
			}
			if _, err := io.ReadFull(in, payload[:n]); err != nil {
				handler.Close()
				return fmt.Errorf("write payload: %w", err)
			}
			wreq := req
			wreq.Data = payload[:n]
			resp := d.dispatch(&wreq)
			if werr := wire.ToError(wire.OpWrite, resp.Status, resp.Msg); werr != nil && pendingWriteErr == nil {
				pendingWriteErr = werr
			}
			prefetch.invalidate() // written content may overlap the prefetch
			continue              // deliberately unacknowledged
		}

		var resp wire.Response
		if req.Op == wire.OpRead && prefetch.serve(&req, &resp) {
			// Served entirely from the prefetched block.
		} else {
			resp = d.dispatch(&req)
			if req.Op == wire.OpTruncate {
				prefetch.invalidate()
			}
		}
		// Deferred write failures surface on the next synchronous barrier.
		if (req.Op == wire.OpSync || req.Op == wire.OpClose) &&
			resp.Status == wire.StatusOK && pendingWriteErr != nil {
			resp.Status, resp.Msg = wire.FromError(pendingWriteErr)
			pendingWriteErr = nil
		}
		if err := resps.WriteResponse(&resp); err != nil {
			handler.Close()
			return fmt.Errorf("response channel: %w", err)
		}
		if req.Op == wire.OpClose {
			return nil
		}
		if req.Op == wire.OpRead {
			// Anticipate the next sequential read while the application is
			// busy consuming this one.
			prefetch.fill(handler, req.Off+int64(len(resp.Data)), int(req.N))
		}
	}
}
