package core

import (
	"io"
	"sync"
)

// byteQueue is an unbounded in-memory byte conduit between an MPSC demux
// loop and one lane's frame reader. The demux side must never block — a slow
// lane would otherwise stall every other lane sharing the segment (head-of-
// line blocking across sessions) — so writes always append and readers block
// until bytes or closure arrive. The queue is the in-process stand-in for
// the per-session pipe the classic transport gets from the kernel, with the
// same EOF-at-close semantics.
type byteQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	r      int // read cursor into buf
	closed bool
	err    error // terminal read error after drain; io.EOF when closed clean
}

func newByteQueue() *byteQueue {
	q := &byteQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// write appends a copy of b. Appends after close are dropped — the reader
// already has its terminal verdict, and a straggling frame for a released
// lane has no one to go to.
func (q *byteQueue) write(b []byte) {
	if len(b) == 0 {
		return
	}
	q.mu.Lock()
	if !q.closed {
		if q.r == len(q.buf) {
			// Fully drained: reuse the allocation from the start.
			q.buf = q.buf[:0]
			q.r = 0
		} else if q.r > 1<<20 && q.r*2 > len(q.buf) {
			// Mostly-consumed large buffer: compact instead of growing.
			n := copy(q.buf, q.buf[q.r:])
			q.buf = q.buf[:n]
			q.r = 0
		}
		q.buf = append(q.buf, b...)
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// Read blocks until bytes are available or the queue is closed, then returns
// as much as fits — the io.Reader the lane's wire.Reader decodes from.
func (q *byteQueue) Read(p []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.r == len(q.buf) {
		if q.closed {
			return 0, q.err
		}
		q.cond.Wait()
	}
	n := copy(p, q.buf[q.r:])
	q.r += n
	return n, nil
}

// Discard drops n buffered bytes, blocking like Read — wire.DrainReader's
// payload-skip fast path.
func (q *byteQueue) Discard(n int) (int, error) {
	total := 0
	q.mu.Lock()
	defer q.mu.Unlock()
	for total < n {
		for q.r == len(q.buf) {
			if q.closed {
				return total, q.err
			}
			q.cond.Wait()
		}
		c := len(q.buf) - q.r
		if c > n-total {
			c = n - total
		}
		q.r += c
		total += c
	}
	return total, nil
}

// SelfBuffered marks the queue for wire.WrapDrain: it is already memory, so
// a drain buffer in front of it would only add a copy.
func (q *byteQueue) SelfBuffered() {}

// close ends the stream. Readers drain what is buffered, then observe err
// (io.EOF when nil). The first close wins; later calls are no-ops.
func (q *byteQueue) close(err error) {
	if err == nil {
		err = io.EOF
	}
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		q.err = err
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}
