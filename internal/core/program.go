package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/backend"
	"repro/internal/cache"
	"repro/internal/remote"
	"repro/internal/vfs"

	// Register the network-crossing backend kinds ("remote", "http", "fleet")
	// in every binary that links the core — including re-exec'd sentinel
	// children, so a manifest's backend= param resolves identically on both
	// sides of a fork.
	_ "repro/internal/backend/remotefs"
	_ "repro/internal/fleet"
)

// Handler serves the file operations of one open session of an active file.
// It is the sentinel program's per-session state: what §2.2 calls "the
// sentinel process", abstracted away from how operations reach it (pipes,
// rendezvous, or direct calls — the engine supplies the transport).
//
// By default handler calls are serialized by the engine, so handlers need
// not be internally synchronized against their own methods. A handler whose
// methods ARE safe for concurrent invocation can say so by implementing
// ConcurrentHandler; the engine then lets independent session operations
// reach it in parallel.
type Handler interface {
	// ReadAt fills p with session content at offset off.
	ReadAt(p []byte, off int64) (int, error)
	// WriteAt stores p at offset off.
	WriteAt(p []byte, off int64) (int, error)
	// Size returns the current content length.
	Size() (int64, error)
	// Truncate sets the content length.
	Truncate(n int64) error
	// Sync flushes program state (caches, remote propagation).
	Sync() error
	// Close ends the session, flushing and releasing resources.
	Close() error
}

// Locker is optionally implemented by handlers that support byte-range
// locks (the §3 concurrent logging use).
type Locker interface {
	Lock(off, n int64) error
	Unlock(off, n int64) error
}

// Controller is optionally implemented by handlers accepting
// program-specific out-of-band commands.
type Controller interface {
	Control(req []byte) ([]byte, error)
}

// ConcurrentHandler is optionally implemented by handlers whose methods are
// safe for concurrent invocation (internally synchronized, or delegating to
// stores that are). Declaring it lifts the engine's per-session
// serialization, so operations that block — a remote source round trip, a
// disk read — overlap instead of queueing. Close is still exclusive: the
// engine quiesces in-flight calls before closing the handler.
type ConcurrentHandler interface {
	// ConcurrentSafe reports whether this handler instance tolerates
	// concurrent method calls. It is consulted once, when the session opens.
	ConcurrentSafe() bool
}

// Program is a sentinel program — the active part of an active file. One
// Program serves many sessions; Open is called once per application open,
// mirroring "the sentinel process is started ... when a user process opens
// the active file" (§2.2).
type Program interface {
	// Name is the identifier stored in manifests.
	Name() string
	// Open begins a session against the environment described by env.
	Open(env *Env) (Handler, error)
}

// Env is everything a program may bind to when a session opens: the
// manifest, the data part, and the remote source.
type Env struct {
	// Path is the manifest location on disk.
	Path string
	// Manifest is the loaded description of the active file.
	Manifest vfs.Manifest
}

// Param returns a program parameter from the manifest, or def when unset.
func (e *Env) Param(key, def string) string {
	if v, ok := e.Manifest.Params[key]; ok {
		return v
	}
	return def
}

// OpenSource dials the manifest's remote source. It returns (nil, nil) when
// the manifest binds no source. Two transports ship with the library: "tcp"
// (the block file service) and "http" (any HTTP server honouring Range; the
// URL is http://<Addr><Path>).
//
// A "backend" param takes precedence over the Source spec: the param is a
// backend spec (see internal/backend), and the bound object is named by the
// "object" param, falling back to Source.Path. Backends subsume the legacy
// kinds — "remote:<addr>" is "tcp" and "http:<base>" is "http" — and add
// local (mem, nativefs), policy (rofs), and fault-injection (errorfs)
// stores, composable by nesting specs.
func (e *Env) OpenSource() (remote.Source, error) {
	if spec := e.Param(vfs.ParamBackend, ""); spec != "" {
		name := e.Param(vfs.ParamObject, "")
		if name == "" {
			name = e.Manifest.Source.Path
		}
		if name == "" {
			return nil, fmt.Errorf("core: backend %q binds no object (set object= or source.path)", spec)
		}
		b, err := backend.Open(spec)
		if err != nil {
			return nil, fmt.Errorf("core: backend %q: %w", spec, err)
		}
		obj, err := b.Open(name)
		if err != nil {
			b.Close()
			return nil, fmt.Errorf("core: backend %q open %q: %w", spec, name, err)
		}
		return &backendSource{Object: obj, owner: b}, nil
	}
	src := e.Manifest.Source
	switch src.Kind {
	case "":
		return nil, nil
	case "tcp":
		c, err := remote.Dial(src.Addr, src.Path)
		if err != nil {
			return nil, fmt.Errorf("source %s/%s: %w", src.Addr, src.Path, err)
		}
		return c, nil
	case "http":
		url := src.Addr
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			url = "http://" + url
		}
		return remote.NewHTTPSource(url+src.Path, nil), nil
	default:
		return nil, fmt.Errorf("core: unknown source kind %q", src.Kind)
	}
}

// OpenData opens the active file's data part.
func (e *Env) OpenData() (*vfs.DataFile, error) {
	if e.Manifest.NoData {
		return nil, errors.New("core: active file has no data part")
	}
	return vfs.OpenData(e.Path)
}

// OpenBackend assembles the storage backend realizing the manifest's cache
// mode (the Figure 5 critical paths):
//
//   - none:   operations pass through to the remote source (or, without a
//     source, directly to the data part);
//   - disk:   the data part is the cache; it is populated from the source on
//     open and flushed back on sync/close;
//   - memory: a buffer in the sentinel's memory is the cache, populated from
//     the source if bound, else from the data part.
func (e *Env) OpenBackend() (cache.Backend, error) {
	mode, err := cache.ParseMode(e.Manifest.Cache)
	if err != nil {
		return nil, err
	}
	source, err := e.OpenSource()
	if err != nil {
		return nil, err
	}

	switch mode {
	case cache.ModeNone:
		if source != nil {
			return cache.NewPassthrough(source)
		}
		data, err := e.OpenData()
		if err != nil {
			return nil, err
		}
		return cache.NewPassthrough(data)

	case cache.ModeDisk:
		data, err := e.OpenData()
		if err != nil {
			closeSource(source)
			return nil, err
		}
		var remoteStore cache.RandomAccess
		if source != nil {
			remoteStore = source
		}
		backend, err := cache.NewLocal(data, remoteStore)
		if err != nil {
			data.Close()
			closeSource(source)
			return nil, err
		}
		if source != nil {
			if err := backend.Populate(); err != nil {
				backend.Close()
				return nil, err
			}
		}
		return backend, nil

	case cache.ModeMemory:
		var persistent cache.RandomAccess
		if source != nil {
			persistent = source
		} else if !e.Manifest.NoData {
			data, err := e.OpenData()
			if err != nil {
				return nil, err
			}
			persistent = data
		}
		backend, err := cache.NewLocal(cache.NewMemStore(), persistent)
		if err != nil {
			closeSource(source)
			return nil, err
		}
		if persistent != nil {
			if err := backend.Populate(); err != nil {
				backend.Close()
				return nil, err
			}
		}
		return backend, nil

	default:
		return nil, fmt.Errorf("core: unhandled cache mode %v", mode)
	}
}

func closeSource(s remote.Source) {
	if s != nil {
		s.Close()
	}
}

// backendSource adapts a backend object to the Source interface (their
// method sets coincide) while tying the backend's lifetime to the session:
// closing the source closes the object, then the backend it came from.
type backendSource struct {
	backend.Object
	owner backend.Backend
}

var _ remote.Source = (*backendSource)(nil)

func (s *backendSource) Close() error {
	err := s.Object.Close()
	if cerr := s.owner.Close(); err == nil {
		err = cerr
	}
	return err
}

// ErrUnknownProgram reports a manifest naming an unregistered program.
var ErrUnknownProgram = errors.New("core: unknown sentinel program")

// Registry maps program names to implementations, like a driver registry.
type Registry struct {
	mu       sync.RWMutex
	programs map[string]Program
}

// NewRegistry returns an empty program registry.
func NewRegistry() *Registry {
	return &Registry{programs: make(map[string]Program)}
}

// Register adds p under its name, replacing any previous registration.
func (r *Registry) Register(p Program) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.programs[p.Name()] = p
}

// Lookup returns the named program.
func (r *Registry) Lookup(name string) (Program, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.programs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProgram, name)
	}
	return p, nil
}

// Names returns the sorted registered program names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.programs))
	for name := range r.programs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// defaultRegistry is the process-wide registry used by Open and the
// re-exec'd sentinel children; programs register at startup, mirroring how
// every NT sentinel executable links the active-file library.
var defaultRegistry = NewRegistry()

// Register adds a program to the default registry.
func Register(p Program) { defaultRegistry.Register(p) }

// LookupProgram finds a program in the default registry.
func LookupProgram(name string) (Program, error) { return defaultRegistry.Lookup(name) }

// ProgramNames lists the default registry's contents.
func ProgramNames() []string { return defaultRegistry.Names() }
