package core

import "repro/internal/wire"

// dispatcher executes decoded requests against a Handler, producing the
// response each transport ships back. It owns a reusable read buffer, so a
// dispatcher serves exactly one session loop at a time.
type dispatcher struct {
	handler Handler
	buf     []byte
}

func newDispatcher(h Handler) *dispatcher {
	return &dispatcher{handler: h}
}

// dispatch runs one operation. The returned response's Data may alias the
// dispatcher's internal buffer; transports must ship or copy it before the
// next call.
func (d *dispatcher) dispatch(req *wire.Request) wire.Response {
	resp := wire.Response{Seq: req.Seq, Status: wire.StatusOK}
	switch req.Op {
	case wire.OpRead:
		n := int(req.N)
		if n < 0 || n > wire.MaxPayload {
			resp.Status, resp.Msg = wire.StatusError, "bad read size"
			return resp
		}
		if cap(d.buf) < n {
			d.buf = make([]byte, n)
		}
		rn, err := d.handler.ReadAt(d.buf[:n], req.Off)
		resp.N = int64(rn)
		resp.Data = d.buf[:rn]
		if err != nil {
			// A short read at end of file keeps its data AND reports EOF,
			// matching os.File.ReadAt semantics end to end.
			resp.Status, resp.Msg = wire.FromError(err)
		}

	case wire.OpWrite:
		wn, err := d.handler.WriteAt(req.Data, req.Off)
		resp.N = int64(wn)
		if err != nil {
			resp.Status, resp.Msg = wire.FromError(err)
		}

	case wire.OpSize:
		size, err := d.handler.Size()
		resp.N = size
		if err != nil {
			resp.Status, resp.Msg = wire.FromError(err)
		}

	case wire.OpTruncate:
		if err := d.handler.Truncate(req.Off); err != nil {
			resp.Status, resp.Msg = wire.FromError(err)
		}

	case wire.OpSync:
		if err := d.handler.Sync(); err != nil {
			resp.Status, resp.Msg = wire.FromError(err)
		}

	case wire.OpLock:
		locker, ok := d.handler.(Locker)
		if !ok {
			resp.Status = wire.StatusUnsupported
			return resp
		}
		if err := locker.Lock(req.Off, req.N); err != nil {
			resp.Status, resp.Msg = wire.FromError(err)
		}

	case wire.OpUnlock:
		locker, ok := d.handler.(Locker)
		if !ok {
			resp.Status = wire.StatusUnsupported
			return resp
		}
		if err := locker.Unlock(req.Off, req.N); err != nil {
			resp.Status, resp.Msg = wire.FromError(err)
		}

	case wire.OpControl:
		ctl, ok := d.handler.(Controller)
		if !ok {
			resp.Status = wire.StatusUnsupported
			return resp
		}
		out, err := ctl.Control(req.Data)
		resp.Data = out
		resp.N = int64(len(out))
		if err != nil {
			resp.Status, resp.Msg = wire.FromError(err)
		}

	case wire.OpClose:
		if err := d.handler.Close(); err != nil {
			resp.Status, resp.Msg = wire.FromError(err)
		}

	default:
		resp.Status = wire.StatusUnsupported
	}
	return resp
}
