package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// releaseNone is the no-op release shared by every dispatch that holds no
// pooled buffer.
func releaseNone() {}

// dispatcher executes operations against a Handler. It is the one code path
// every strategy's parallelism goes through: the thread sentinel workers,
// the procctl serving loop, the direct transport, and the stream sentinel
// all funnel handler access here. The dispatcher is safe for concurrent use
// — it serializes Handler calls (the Handler contract leaves programs
// unsynchronized) while letting callers overlap everything around them:
// framing, pipe I/O, buffer copies, and waiting.
type dispatcher struct {
	handler Handler
	// mu guards handler calls. For ordinary handlers every call takes the
	// write side, restoring strict serialization; handlers declaring
	// ConcurrentSafe take the read side, so their calls overlap and only
	// closeHandler (write side) excludes them.
	mu     sync.RWMutex
	serial bool         // serialize every handler call
	closed atomic.Bool  // set once the handler has been closed
	wb     *writeBehind // opt-in write coalescer; nil when disabled
}

func newDispatcher(h Handler) *dispatcher {
	serial := true
	if ch, ok := h.(ConcurrentHandler); ok && ch.ConcurrentSafe() {
		serial = false
	}
	return &dispatcher{handler: h, serial: serial}
}

// enableWriteBehind turns on write coalescing. Call before the dispatcher
// serves traffic.
func (d *dispatcher) enableWriteBehind() {
	d.wb = &writeBehind{d: d}
}

// enter acquires the handler-call lock appropriate to the handler's
// concurrency contract and returns the matching release.
func (d *dispatcher) enter() func() {
	if d.serial {
		d.mu.Lock()
		return d.mu.Unlock
	}
	d.mu.RLock()
	return d.mu.RUnlock
}

// guarded runs one handler call under the dispatch lock, converting a panic
// in the program into an error instead of letting it unwind the sentinel:
// an unwound sentinel tears the channel mid-frame and the application sees
// only a dead pipe, while an error response keeps the session answering.
// The lock is released before the panic is swallowed, so a poisoned call
// can never wedge every later operation.
func (d *dispatcher) guarded(f func() error) (err error) {
	unlock := d.enter()
	defer func() {
		unlock()
		if r := recover(); r != nil {
			err = fmt.Errorf("sentinel program panicked: %v", r)
		}
	}()
	return f()
}

// dispatch runs one operation, concurrency-safe. For OpRead the response's
// Data is backed by a pooled buffer: the caller must invoke release exactly
// once, after shipping or copying the data. For every other operation
// release is a no-op (but still safe to call).
func (d *dispatcher) dispatch(req *wire.Request) (wire.Response, func()) {
	resp := wire.Response{Seq: req.Seq, Status: wire.StatusOK}
	if d.closed.Load() && req.Op != wire.OpClose {
		resp.Status = wire.StatusClosed
		return resp, releaseNone
	}
	switch req.Op {
	case wire.OpRead:
		n := int(req.N)
		if n < 0 || n > wire.MaxPayload {
			resp.Status, resp.Msg = wire.StatusError, "bad read size"
			return resp, releaseNone
		}
		d.wb.flushOverlap(req.Off, n)
		buf, release := wire.GetBuf(n)
		var rn int
		err := d.guarded(func() (e error) { rn, e = d.handler.ReadAt(buf, req.Off); return })
		resp.N = int64(rn)
		resp.Data = buf[:rn]
		if err != nil {
			// A short read at end of file keeps its data AND reports EOF,
			// matching os.File.ReadAt semantics end to end.
			resp.Status, resp.Msg = wire.FromError(err)
		}
		return resp, release

	case wire.OpWrite:
		var wn int
		var err error
		if d.wb != nil {
			wn, err = d.wb.write(req.Data, req.Off)
		} else {
			err = d.guarded(func() (e error) { wn, e = d.handler.WriteAt(req.Data, req.Off); return })
		}
		resp.N = int64(wn)
		if err != nil {
			resp.Status, resp.Msg = wire.FromError(err)
		}

	case wire.OpSize:
		d.wb.flush() // buffered writes may extend the file
		var size int64
		err := d.guarded(func() (e error) { size, e = d.handler.Size(); return })
		resp.N = size
		if err != nil {
			resp.Status, resp.Msg = wire.FromError(err)
		}

	case wire.OpTruncate:
		d.wb.flush() // buffered writes happened before the truncate
		if err := d.guarded(func() error { return d.handler.Truncate(req.Off) }); err != nil {
			resp.Status, resp.Msg = wire.FromError(err)
		}

	case wire.OpSync:
		werr := d.wb.settle()
		err := d.guarded(func() error { return d.handler.Sync() })
		if werr != nil {
			// The deferred write failure is the older event; it wins.
			err = werr
		}
		if err != nil {
			resp.Status, resp.Msg = wire.FromError(err)
		}

	case wire.OpLock:
		locker, ok := d.handler.(Locker)
		if !ok {
			resp.Status = wire.StatusUnsupported
			return resp, releaseNone
		}
		err := d.guarded(func() error { return locker.Lock(req.Off, req.N) })
		if err != nil {
			resp.Status, resp.Msg = wire.FromError(err)
		}

	case wire.OpUnlock:
		locker, ok := d.handler.(Locker)
		if !ok {
			resp.Status = wire.StatusUnsupported
			return resp, releaseNone
		}
		err := d.guarded(func() error { return locker.Unlock(req.Off, req.N) })
		if err != nil {
			resp.Status, resp.Msg = wire.FromError(err)
		}

	case wire.OpControl:
		ctl, ok := d.handler.(Controller)
		if !ok {
			resp.Status = wire.StatusUnsupported
			return resp, releaseNone
		}
		d.wb.flush() // the program may inspect file state out of band
		var out []byte
		err := d.guarded(func() (e error) { out, e = ctl.Control(req.Data); return })
		resp.Data = out
		resp.N = int64(len(out))
		if err != nil {
			resp.Status, resp.Msg = wire.FromError(err)
		}

	case wire.OpClose:
		if err := d.closeHandler(); err != nil {
			resp.Status, resp.Msg = wire.FromError(err)
		}

	default:
		resp.Status = wire.StatusUnsupported
	}
	return resp, releaseNone
}

// The direct transport (and the prefetcher, and the stream sentinel) bypass
// wire framing entirely and use these serialized accessors — the zero-copy
// fast path into the same handler-synchronization discipline dispatch uses.

// readAt fills p from the handler at off, serialized with all other handler
// calls. Zero-copy: the handler writes straight into p.
func (d *dispatcher) readAt(p []byte, off int64) (int, error) {
	if d.closed.Load() {
		return 0, wire.ErrClosed
	}
	d.wb.flushOverlap(off, len(p))
	defer d.enter()()
	return d.handler.ReadAt(p, off)
}

// handlerWriteAt is the raw backing write: straight to the handler under its
// lock, bypassing the coalescer. It is the write-behind flush path.
func (d *dispatcher) handlerWriteAt(p []byte, off int64) (int, error) {
	defer d.enter()()
	return d.handler.WriteAt(p, off)
}

// writeAt stores p at off, serialized with all other handler calls (or
// buffered, when write-behind is on).
func (d *dispatcher) writeAt(p []byte, off int64) (int, error) {
	if d.closed.Load() {
		return 0, wire.ErrClosed
	}
	if d.wb != nil {
		return d.wb.write(p, off)
	}
	defer d.enter()()
	return d.handler.WriteAt(p, off)
}

func (d *dispatcher) size() (int64, error) {
	if d.closed.Load() {
		return 0, wire.ErrClosed
	}
	d.wb.flush()
	defer d.enter()()
	return d.handler.Size()
}

func (d *dispatcher) truncate(n int64) error {
	if d.closed.Load() {
		return wire.ErrClosed
	}
	d.wb.flush()
	defer d.enter()()
	return d.handler.Truncate(n)
}

func (d *dispatcher) sync() error {
	if d.closed.Load() {
		return wire.ErrClosed
	}
	werr := d.wb.settle()
	defer d.enter()()
	if err := d.handler.Sync(); werr == nil {
		return err
	}
	return werr
}

func (d *dispatcher) lock(off, n int64) error {
	locker, ok := d.handler.(Locker)
	if !ok {
		return wire.ErrUnsupported
	}
	if d.closed.Load() {
		return wire.ErrClosed
	}
	defer d.enter()()
	return locker.Lock(off, n)
}

func (d *dispatcher) unlock(off, n int64) error {
	locker, ok := d.handler.(Locker)
	if !ok {
		return wire.ErrUnsupported
	}
	if d.closed.Load() {
		return wire.ErrClosed
	}
	defer d.enter()()
	return locker.Unlock(off, n)
}

func (d *dispatcher) control(req []byte) ([]byte, error) {
	ctl, ok := d.handler.(Controller)
	if !ok {
		return nil, wire.ErrUnsupported
	}
	if d.closed.Load() {
		return nil, wire.ErrClosed
	}
	d.wb.flush()
	defer d.enter()()
	return ctl.Control(req)
}

// closeHandler closes the handler exactly once; later calls (and dispatches)
// are no-ops reporting success or StatusClosed respectively. Every shutdown
// path — explicit OpClose, abandoned transport, failed channel — funnels
// here, so a session can never double-close its program. Buffered writes
// settle before the handler lock is taken (wb.mu orders before d.mu), and a
// deferred write failure outranks a clean close.
func (d *dispatcher) closeHandler() error {
	var werr error
	if !d.closed.Load() {
		werr = d.wb.settle()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := d.handler.Close()
	if werr != nil {
		return werr
	}
	return err
}
