package core

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/shm"
	"repro/internal/vfs"
)

// newLaneManifest creates one lane-plane active file and returns its path
// and manifest; sessions opened from it share MPSC segments. The hub is
// drained at cleanup so shared children never outlive the test.
func newLaneManifest(t *testing.T, lanes int, extra map[string]string) (string, vfs.Manifest) {
	t.Helper()
	params := map[string]string{
		"transport": "shm",
		"shmlanes":  fmt.Sprint(lanes),
	}
	for k, v := range extra {
		params[k] = v
	}
	path := filepath.Join(t.TempDir(), "file.af")
	if err := vfs.Create(path, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "memory",
		Params:  params,
	}); err != nil {
		t.Fatalf("vfs.Create: %v", err)
	}
	m, err := vfs.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(DrainSharedSegments)
	return path, m
}

// openLane opens one session on the lane plane and fails the test on any
// demotion: these tests exist to drive the shared plane, not its fallback.
func openLane(t *testing.T, path string, m vfs.Manifest) *procCtlTransport {
	t.Helper()
	tr, err := newProcCtlTransport(path, m)
	if err != nil {
		t.Fatalf("newProcCtlTransport: %v", err)
	}
	if tr.lane == nil {
		tr.close()
		t.Fatalf("session fell off the lane plane: %q", tr.fallback)
	}
	return tr
}

// TestShmLanesParam pins lane-count validation and the transport=shm
// requirement.
func TestShmLanesParam(t *testing.T) {
	man := func(params map[string]string) vfs.Manifest { return vfs.Manifest{Params: params} }
	if n, err := shmLanesParam(man(nil)); n != 0 || err != nil {
		t.Fatalf("absent shmlanes = %d, %v", n, err)
	}
	if n, err := shmLanesParam(man(map[string]string{"shmlanes": "16", "transport": "shm"})); n != 16 || err != nil {
		t.Fatalf("shmlanes=16 = %d, %v", n, err)
	}
	for _, bad := range []string{"0", "-1", "abc", fmt.Sprint(shm.MaxLanes + 1)} {
		if _, err := shmLanesParam(man(map[string]string{"shmlanes": bad, "transport": "shm"})); err == nil {
			t.Errorf("shmlanes=%q accepted", bad)
		}
	}
	// Lanes are a sharing discipline for the ring carrier; pipe cannot host them.
	if _, err := shmLanesParam(man(map[string]string{"shmlanes": "4"})); err == nil {
		t.Error("shmlanes without transport=shm accepted")
	}
}

// TestLaneTransportEndToEnd drives one session over a shared MPSC segment:
// reads, bulk writes (RecordData payloads), size, sync, and close must
// behave exactly like a dedicated sentinel.
func TestLaneTransportEndToEnd(t *testing.T) {
	requireShm(t)
	path, m := newLaneManifest(t, 8, nil)
	tr := openLane(t, path, m)

	payload := make([]byte, 64<<10) // large enough to chunk across records
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if n, err := tr.writeAt(payload, 0); err != nil || n != len(payload) {
		t.Fatalf("writeAt = %d, %v", n, err)
	}
	if err := tr.sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	got := make([]byte, len(payload))
	if n, err := tr.readAt(got, 0); err != nil || n != len(got) {
		t.Fatalf("readAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("lane round trip corrupted payload")
	}
	if size, err := tr.size(); err != nil || size != int64(len(payload)) {
		t.Fatalf("size = %d, %v", size, err)
	}
	ds := tr.dataPlaneStats()
	if ds.Carrier != "shm" || ds.CarrierFallback != "" {
		t.Fatalf("lane carrier = %q/%q", ds.Carrier, ds.CarrierFallback)
	}
	if ds.SegmentSessions != 1 || ds.SegmentFDs != 5 || ds.DoorbellFDs != 4 {
		t.Fatalf("lane fd stats = %+v", ds)
	}
	if err := tr.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestLaneSessionsShareSegment is the descriptor-economy criterion: 256
// sessions multiplexed on one shared segment must cost the parent exactly
// one extra segment (five descriptors, four of them doorbells) — O(1) fds
// per segment, not per session — and everything must return to baseline
// after the sessions close and the hub drains.
func TestLaneSessionsShareSegment(t *testing.T) {
	requireShm(t)
	if testing.Short() {
		t.Skip("256-session sweep in -short mode")
	}
	base := shm.SnapshotFDs()
	path, m := newLaneManifest(t, 256, map[string]string{"readahead": "false"})

	const sessions = 256
	trs := make([]*procCtlTransport, sessions)
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := range trs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := newProcCtlTransport(path, m)
			if err != nil {
				errs <- err
				return
			}
			trs[i] = tr
			if tr.lane == nil {
				errs <- fmt.Errorf("session %d fell off the lane plane: %q", i, tr.fallback)
				return
			}
			if _, err := tr.size(); err != nil {
				errs <- fmt.Errorf("session %d size: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	now := shm.SnapshotFDs()
	if got := now.Segments - base.Segments; got != 1 {
		t.Fatalf("256 lane sessions mapped %d segments, want 1", got)
	}
	if got := now.DoorbellFDs - base.DoorbellFDs; got != 4 {
		t.Fatalf("256 lane sessions pinned %d doorbell fds, want 4", got)
	}
	if got := now.LaneSessions - base.LaneSessions; got != sessions {
		t.Fatalf("lane session gauge = %d, want %d", got, sessions)
	}
	for _, tr := range trs {
		if tr == nil {
			continue
		}
		if err := tr.close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	DrainSharedSegments()
	end := shm.SnapshotFDs()
	if end != base {
		t.Fatalf("fd gauges did not return to baseline: base %+v, end %+v", base, end)
	}
}

// TestLaneSessionCloseDoesNotPoisonSiblings closes one of N sessions sharing
// a segment mid-traffic; the siblings' pipelines must keep answering, and a
// successor session must be able to reuse the quiesced lane on the same
// segment (no new descriptors).
func TestLaneSessionCloseDoesNotPoisonSiblings(t *testing.T) {
	requireShm(t)
	path, m := newLaneManifest(t, 8, map[string]string{"readahead": "false"})

	const sessions = 4
	trs := make([]*procCtlTransport, sessions)
	for i := range trs {
		trs[i] = openLane(t, path, m)
		seed := []byte(fmt.Sprintf("session %d content", i))
		if _, err := trs[i].writeAt(seed, 0); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if err := trs[i].sync(); err != nil {
			t.Fatalf("seed sync %d: %v", i, err)
		}
	}
	before := shm.SnapshotFDs()

	stop := make(chan struct{})
	errs := make(chan error, sessions-1)
	var wg sync.WaitGroup
	for i := 1; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := []byte(fmt.Sprintf("session %d content", i))
			buf := make([]byte, len(want))
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				n, err := trs[i].readAt(buf, 0)
				if err != nil {
					errs <- fmt.Errorf("sibling %d read: %w", i, err)
					return
				}
				if !bytes.Equal(buf[:n], want) {
					errs <- fmt.Errorf("sibling %d read misattributed bytes %q", i, buf[:n])
					return
				}
			}
		}(i)
	}
	// Retire session 0 while the siblings hammer the shared queues.
	if err := trs[0].close(); err != nil {
		t.Fatalf("close session 0: %v", err)
	}
	// Its lane must come back for a successor on the same segment.
	deadline := time.Now().Add(5 * time.Second)
	var succ *procCtlTransport
	for {
		tr, err := newProcCtlTransport(path, m)
		if err != nil {
			t.Fatalf("successor open: %v", err)
		}
		if tr.lane != nil {
			succ = tr
			break
		}
		tr.close()
		if time.Now().After(deadline) {
			t.Fatal("released lane never quiesced for reuse")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := succ.size(); err != nil {
		t.Fatalf("successor size: %v", err)
	}
	if now := shm.SnapshotFDs(); now.Segments != before.Segments || now.DoorbellFDs != before.DoorbellFDs {
		t.Fatalf("lane reuse changed segment fds: before %+v, now %+v", before, now)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	succ.close()
	for i := 1; i < sessions; i++ {
		if err := trs[i].close(); err != nil {
			t.Fatalf("close sibling %d: %v", i, err)
		}
	}
}

// TestLaneSentinelDeathFansOut is the chaos criterion for the shared plane:
// SIGKILL of the one sentinel serving N lanes must fail every session's
// exchanges promptly (ErrSentinelDied), and the next open must come up on a
// fresh segment instead of the dead one.
func TestLaneSentinelDeathFansOut(t *testing.T) {
	requireShm(t)
	faultinject.LeakCheck(t)
	path, m := newLaneManifest(t, 8, map[string]string{"readahead": "false"})

	const sessions = 3
	trs := make([]*procCtlTransport, sessions)
	for i := range trs {
		trs[i] = openLane(t, path, m)
		if _, err := trs[i].size(); err != nil {
			t.Fatalf("healthy size %d: %v", i, err)
		}
	}
	seg := trs[0].lane.ls
	if err := seg.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill shared sentinel: %v", err)
	}

	for i, tr := range trs {
		waitDeadline := time.Now().Add(5 * time.Second)
		for {
			_, err := tr.size()
			if errors.Is(err, ErrSentinelDied) {
				break
			}
			if err == nil {
				t.Fatalf("session %d exchange succeeded against a dead sentinel", i)
			}
			if time.Now().After(waitDeadline) {
				t.Fatalf("session %d error never became ErrSentinelDied: %v", i, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// The hub must retire the dead segment and spawn a fresh one.
	tr, err := newProcCtlTransport(path, m)
	if err != nil {
		t.Fatalf("open after death: %v", err)
	}
	if tr.lane == nil {
		t.Fatalf("post-death open fell off the lane plane: %q", tr.fallback)
	}
	if tr.lane.ls == seg {
		t.Fatal("post-death open landed on the dead segment")
	}
	if _, err := tr.size(); err != nil {
		t.Fatalf("size on fresh segment: %v", err)
	}
	if err := tr.close(); err != nil {
		t.Fatalf("close fresh: %v", err)
	}
	for i, tr := range trs {
		done := make(chan error, 1)
		go func() { done <- tr.close() }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("session %d close hung after sentinel death", i)
		}
	}
}

// TestLaneTornTeardown drains the hub while sessions are mid-pipeline: every
// session must fail or finish promptly — nothing may park forever on the
// vanished queues — and no goroutine may leak.
func TestLaneTornTeardown(t *testing.T) {
	requireShm(t)
	faultinject.LeakCheck(t)
	path, m := newLaneManifest(t, 8, map[string]string{"readahead": "false"})

	const sessions = 4
	trs := make([]*procCtlTransport, sessions)
	for i := range trs {
		trs[i] = openLane(t, path, m)
		if _, err := trs[i].writeAt([]byte("torn"), 0); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}
	var wg sync.WaitGroup
	for _, tr := range trs {
		wg.Add(1)
		go func(tr *procCtlTransport) {
			defer wg.Done()
			buf := make([]byte, 4)
			for {
				if _, err := tr.readAt(buf, 0); err != nil {
					return
				}
			}
		}(tr)
	}
	time.Sleep(10 * time.Millisecond) // let the pipelines overlap the drain
	DrainSharedSegments()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sessions still blocked after hub drain")
	}
	for i, tr := range trs {
		fin := make(chan error, 1)
		go func() { fin <- tr.close() }()
		select {
		case <-fin:
		case <-time.After(10 * time.Second):
			t.Fatalf("session %d close hung after drain", i)
		}
	}
}
