package core

import (
	"fmt"

	"repro/internal/vfs"
)

// Options adjust how an active file is opened.
type Options struct {
	// Strategy overrides the manifest's default implementation strategy.
	Strategy Strategy
	// Registry resolves program names; nil selects the default registry.
	Registry *Registry
}

// Open opens the active file at path: it loads the manifest, resolves the
// sentinel program and strategy, instantiates the sentinel (spawning a
// subprocess or goroutine as the strategy dictates), and returns the
// connected Handle. This is the machinery behind the instrumented
// OpenFile/CreateFile stub.
func Open(path string, opts Options) (*Handle, error) {
	m, err := vfs.Load(path)
	if err != nil {
		return nil, err
	}

	strategy := opts.Strategy
	if strategy == 0 {
		if strategy, err = ParseStrategy(m.Strategy); err != nil {
			return nil, err
		}
	}
	if !strategy.Valid() {
		return nil, fmt.Errorf("core: invalid strategy %v", strategy)
	}

	switch strategy {
	case StrategyProcess:
		tr, err := newProcessTransport(path, m)
		if err != nil {
			return nil, err
		}
		return newHandle(strategy, tr), nil

	case StrategyProcCtl:
		tr, err := newProcCtlTransport(path, m)
		if err != nil {
			return nil, err
		}
		return newHandle(strategy, tr), nil

	case StrategyThread, StrategyDirect:
		registry := opts.Registry
		if registry == nil {
			registry = defaultRegistry
		}
		program, err := registry.Lookup(m.Program.Name)
		if err != nil {
			return nil, err
		}
		handler, err := program.Open(&Env{Path: path, Manifest: m})
		if err != nil {
			return nil, fmt.Errorf("open program %q: %w", m.Program.Name, err)
		}
		writeBehind := m.Params["writebehind"] == "true"
		if strategy == StrategyThread {
			topts := threadOptions{
				readAhead:   m.Params["readahead"] != "false",
				writeBehind: writeBehind,
			}
			return newHandle(strategy, newThreadTransport(handler, topts)), nil
		}
		// Direct calls have no switch cost to hide, so read-ahead buys
		// nothing; write coalescing still batches handler round trips.
		return newHandle(strategy, newDirectTransport(handler, writeBehind)), nil

	default:
		return nil, fmt.Errorf("core: unhandled strategy %v", strategy)
	}
}
