package core

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/vfs"
)

// Warm sentinel pool tests live in the core package so they can observe pool
// internals (idle identity, monitors) that the public API deliberately hides.
// The shared TestMain in core_test registers programs and handles child
// re-exec for the whole test binary.

func createPooledAF(t *testing.T, pool string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "file.af")
	m := vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "disk",
		Params:  map[string]string{"pool": pool},
	}
	if err := vfs.Create(path, m); err != nil {
		t.Fatalf("vfs.Create: %v", err)
	}
	return path
}

func TestPoolParam(t *testing.T) {
	cases := []struct {
		give    string
		want    int
		wantErr bool
	}{
		{give: "", want: 0},
		{give: "0", want: 0},
		{give: "4", want: 4},
		{give: "-1", wantErr: true},
		{give: "two", wantErr: true},
	}
	for _, tc := range cases {
		m := vfs.Manifest{Params: map[string]string{"pool": tc.give}}
		got, err := poolParam(m)
		if (err != nil) != tc.wantErr {
			t.Errorf("poolParam(%q) err = %v, wantErr %v", tc.give, err, tc.wantErr)
		}
		if err == nil && got != tc.want {
			t.Errorf("poolParam(%q) = %d, want %d", tc.give, got, tc.want)
		}
	}
}

func TestPrewarmFillsAndDrainEmptiesPool(t *testing.T) {
	path := createPooledAF(t, "2")
	defer DrainSentinelPool()

	n, err := PrewarmSentinels(path)
	if err != nil {
		t.Fatalf("PrewarmSentinels: %v", err)
	}
	if n != 2 || IdleSentinels(path) != 2 {
		t.Fatalf("prewarmed %d idle %d, want 2/2", n, IdleSentinels(path))
	}

	DrainSentinelPool()
	if got := IdleSentinels(path); got != 0 {
		t.Fatalf("idle after drain = %d, want 0", got)
	}

	// The pool is reusable after a drain.
	if n, err = PrewarmSentinels(path); err != nil || n != 2 {
		t.Fatalf("re-prewarm = (%d, %v), want (2, nil)", n, err)
	}
}

func TestWarmOpenAdoptsPooledSentinel(t *testing.T) {
	path := createPooledAF(t, "1")
	defer DrainSentinelPool()

	if _, err := PrewarmSentinels(path); err != nil {
		t.Fatalf("PrewarmSentinels: %v", err)
	}
	procPool.mu.Lock()
	if len(procPool.idle[path]) != 1 {
		procPool.mu.Unlock()
		t.Fatal("expected exactly one parked sentinel")
	}
	warm := procPool.idle[path][0]
	procPool.mu.Unlock()

	h, err := Open(path, Options{Strategy: StrategyProcCtl})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer h.Close()

	// Adoption happens synchronously inside Open: the parked entry must be
	// gone from the idle list (replenishment adds a NEW sentinel, never the
	// adopted one back).
	procPool.mu.Lock()
	for _, ps := range procPool.idle[path] {
		if ps == warm {
			procPool.mu.Unlock()
			t.Fatal("adopted sentinel still parked in the pool")
		}
	}
	procPool.mu.Unlock()

	// And the adopted sentinel serves real traffic end to end.
	if _, err := h.WriteAt([]byte("warm start"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, 10)
	if _, err := h.ReadAt(got, 0); err != nil || string(got) != "warm start" {
		t.Fatalf("ReadAt = (%q, %v)", got, err)
	}
}

func TestWarmPoolReplenishesAfterClose(t *testing.T) {
	path := createPooledAF(t, "2")
	defer DrainSentinelPool()

	if _, err := PrewarmSentinels(path); err != nil {
		t.Fatalf("PrewarmSentinels: %v", err)
	}
	h, err := Open(path, Options{Strategy: StrategyProcCtl})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := IdleSentinels(path); got != 1 {
		t.Fatalf("idle after adoption = %d, want 1 (replenish is deferred to close)", got)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// close() tops the pool back up in the background; wait for it to reach
	// the configured size.
	deadline := time.Now().Add(5 * time.Second)
	for IdleSentinels(path) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never replenished: idle = %d, want 2", IdleSentinels(path))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDeadIdleSentinelIsDiscarded(t *testing.T) {
	path := createPooledAF(t, "1")
	defer DrainSentinelPool()

	if _, err := PrewarmSentinels(path); err != nil {
		t.Fatalf("PrewarmSentinels: %v", err)
	}
	procPool.mu.Lock()
	warm := procPool.idle[path][0]
	procPool.mu.Unlock()

	// Kill the parked child and wait for its monitor to notice; the death
	// hook self-evicts the entry from the idle list.
	if err := warm.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill parked sentinel: %v", err)
	}
	select {
	case <-warm.mon.done:
	case <-time.After(5 * time.Second):
		t.Fatal("monitor never observed sentinel death")
	}
	deadline := time.Now().Add(5 * time.Second)
	for IdleSentinels(path) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead sentinel never evicted from idle list")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The pool is empty, so Open cold-spawns — and must still work.
	h, err := Open(path, Options{Strategy: StrategyProcCtl})
	if err != nil {
		t.Fatalf("Open after pool death: %v", err)
	}
	defer h.Close()
	if _, err := h.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
}

func TestUnpooledManifestBypassesPool(t *testing.T) {
	path := filepath.Join(t.TempDir(), "file.af")
	if err := vfs.Create(path, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "disk",
	}); err != nil {
		t.Fatal(err)
	}
	if n, err := PrewarmSentinels(path); err != nil || n != 0 {
		t.Fatalf("PrewarmSentinels on unpooled manifest = (%d, %v), want (0, nil)", n, err)
	}
	h, err := Open(path, Options{Strategy: StrategyProcCtl})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer h.Close()
	if got := IdleSentinels(path); got != 0 {
		t.Fatalf("unpooled open parked %d sentinels", got)
	}
}
