package core

import (
	"fmt"
	"io"
	"os"

	"repro/internal/ipc"
	"repro/internal/shm"
	"repro/internal/vfs"
)

// envShm marks a sentinel child whose parent successfully created a shared-
// memory segment: the child must attach it from the inherited descriptors
// and serve control frames over the rings. The marker — not the manifest —
// is authoritative, because the parent falls back to pipes silently when the
// platform or the segment allocation lets it down; both sides must agree on
// the carrier and only the parent knows the outcome.
const envShm = "AF_SENTINEL_SHM"

// Child-side descriptor numbers of the inherited segment files, after the
// three pipes (fds 3, 4, 5): the mapped segment, then the four doorbells in
// shm.ChildFiles order.
const (
	childFDShmSeg   = 6
	childFDShmBells = 7 // four bells: fds 7, 8, 9, 10
)

// transportParam parses the manifest's carrier selection for the procctl
// control channel (param "transport"): "pipe" (the default) or "shm".
func transportParam(m vfs.Manifest) (string, error) {
	switch v := m.Params["transport"]; v {
	case "", "pipe":
		return "pipe", nil
	case "shm":
		return "shm", nil
	default:
		return "", fmt.Errorf("core: bad transport param %q (want pipe or shm)", v)
	}
}

// shmConn is the parent's shared-memory conduit: command frames ride the
// cmd ring, responses the reply ring, while bulk write payloads stay on the
// to-child data pipe — the batch writer flushes a batch's command frames and
// payloads as two separate spans, so giving payloads their own carrier keeps
// the child's "command frame, then payload bytes" pairing intact without
// re-interleaving the streams.
type shmConn struct {
	seg *shm.Segment
	cf  *ipc.ChannelFiles
}

var _ ipc.FrameConn = (*shmConn)(nil)

func (c *shmConn) Ctrl() io.Writer { return c.seg.Cmd() }
func (c *shmConn) Resp() io.Reader { return c.seg.Reply() }
func (c *shmConn) Data() io.Writer { return c.cf.ToChild }

// Close tears down both carriers: the segment first (waking anything parked
// on a ring, then unmapping), then the pipes.
func (c *shmConn) Close() error {
	c.seg.Close()
	return c.cf.Close()
}

// sessionConn picks the conduit a spawned session actually got: rings plus
// the data pipe when a segment was created, the plain pipe trio otherwise.
func sessionConn(cf *ipc.ChannelFiles, seg *shm.Segment) ipc.FrameConn {
	if seg != nil {
		return &shmConn{seg: seg, cf: cf}
	}
	return ipc.PipeConn{CF: cf}
}

// newSessionSegment creates the shared segment for a procctl spawn when the
// manifest asks for the shm transport and the platform can host it. A nil
// segment (with nil error) means "use pipes" — either by choice or by
// fallback; segment allocation failure is deliberately not fatal, since the
// pipe path serves every session the ring path serves. The fallback is no
// longer silent, though: when shm was requested but pipes serve the
// session, the returned reason says why, and the transport surfaces it
// through Handle.Stats so an operator can tell a chosen pipe carrier from a
// demoted one.
func newSessionSegment(m vfs.Manifest, strategy Strategy) (*shm.Segment, string, error) {
	if strategy != StrategyProcCtl {
		return nil, "", nil
	}
	carrier, err := transportParam(m)
	if err != nil {
		return nil, "", err
	}
	if carrier != "shm" {
		return nil, "", nil
	}
	if !shm.Supported() {
		return nil, "platform does not support shared-memory rings", nil
	}
	seg, err := shm.New(0, 0)
	if err != nil {
		return nil, fmt.Sprintf("segment allocation failed: %v", err), nil
	}
	return seg, "", nil
}

// attachChildSegment maps the segment a parent advertised via envShm from
// the inherited descriptors. Unlike the parent, the child cannot fall back:
// the parent is already serving this session over the rings.
func attachChildSegment() (*shm.Segment, error) {
	segFile := os.NewFile(childFDShmSeg, "af-shm-seg")
	if segFile == nil {
		return nil, fmt.Errorf("core: shm segment fd not inherited")
	}
	bells := make([]*os.File, 4)
	for i := range bells {
		bells[i] = os.NewFile(uintptr(childFDShmBells+i), "af-shm-doorbell")
	}
	seg, err := shm.Attach(segFile, bells)
	if err != nil {
		return nil, fmt.Errorf("core: attach shm segment: %w", err)
	}
	return seg, nil
}

// watchParentViaCtrl supervises the parent from a shm child: the control
// pipe carries no frames in ring mode, so any read return — EOF when the
// parent closes or dies, an error otherwise — means the parent is gone.
// Closing the segment then wakes the serving loop off its parked ring with
// EOF, the same terminal the pipe path gets from kernel EOF, so an orphaned
// sentinel exits instead of parking forever on rings no one will ring.
func watchParentViaCtrl(ctrl io.Reader, seg *shm.Segment) {
	go func() {
		var buf [1]byte
		ctrl.Read(buf[:])
		seg.Close()
	}()
}
