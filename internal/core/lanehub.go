package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ipc"
	"repro/internal/shm"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// The MPSC lane plane: many sessions of one active file multiplexed onto a
// single shared-memory segment served by a single sentinel subprocess. The
// classic shm transport pins one segment, four doorbell eventfds, and one
// child per session; at fleet scale (hundreds of sessions of the same
// manifest) that descriptor and process bill dominates. Here the hub hands
// each new session a lane — a tagged slice of the shared command/reply
// queues — so a segment's five descriptors and one sentinel serve up to
// shm.MaxLanes sessions, and a new segment is spawned only when every lane
// of the existing ones is taken.
const (
	// envShmLanes marks a lane-serving sentinel child and carries the lane
	// count of the segment it must attach (same descriptor slots as envShm).
	envShmLanes = "AF_SENTINEL_SHM_LANES"
	// envShmNode tells the child which NUMA node its segment was bound to,
	// so it pins its intake loop there (absent or -1: no pinning).
	envShmNode = "AF_SHM_NODE"
)

// laneReadyTimeout bounds the wait for a fresh lane sentinel's ready beacon;
// laneOpenTimeout bounds each session's OpOpen handshake on its lane.
const (
	laneReadyTimeout = 5 * time.Second
	laneOpenTimeout  = 5 * time.Second
)

// shmLanesParam parses the manifest's lane-plane selection (param
// "shmlanes"): 0 or absent disables it; 1..shm.MaxLanes multiplexes that
// many sessions per shared segment. Requires transport=shm — lanes are a
// sharing discipline for the ring carrier, not a carrier of their own.
func shmLanesParam(m vfs.Manifest) (int, error) {
	v := m.Params["shmlanes"]
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 || n > shm.MaxLanes {
		return 0, fmt.Errorf("core: bad shmlanes param %q (want 1..%d)", v, shm.MaxLanes)
	}
	carrier, err := transportParam(m)
	if err != nil {
		return 0, err
	}
	if carrier != "shm" {
		return 0, fmt.Errorf("core: shmlanes=%d requires transport=shm", n)
	}
	return n, nil
}

// laneHub is the process-wide registry of shared lane segments, keyed by
// manifest path so sessions of different active files never share a
// sentinel. It also owns the NUMA probe: segments are spread round-robin
// across the nodes that have CPUs, and each segment's demux loop is pinned
// to its node.
type laneHub struct {
	mu     sync.Mutex
	segs   map[string][]*laneSegment
	probed bool
	nodes  []int // NUMA nodes with CPUs; nil on single-node hosts
	next   int   // round-robin cursor into nodes
}

var lanePlane = &laneHub{segs: make(map[string][]*laneSegment)}

// acquire hands out one lane: the first free lane of a live segment for this
// manifest, or a lane of a freshly spawned segment when all are full. The
// returned reason is non-empty (with nil conn and nil error) when the plane
// cannot serve and the caller should fall back to a dedicated session.
func (h *laneHub) acquire(path string, m vfs.Manifest, lanes int) (*laneConn, string, error) {
	if !shm.Supported() {
		return nil, "platform does not support shared-memory rings", nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.probed {
		h.probed = true
		h.nodes = shm.NumaNodes()
	}
	live := h.segs[path][:0]
	var conn *laneConn
	for _, ls := range h.segs[path] {
		if ls.isDead() {
			continue // reaped by its death hook; drop from the registry
		}
		live = append(live, ls)
		if conn == nil {
			conn = ls.claim()
		}
	}
	h.segs[path] = live
	if conn != nil {
		return conn, "", nil
	}
	node := -1
	if len(h.nodes) > 0 {
		node = h.nodes[h.next%len(h.nodes)]
		h.next++
	}
	ls, err := h.spawnSegment(path, m, lanes, node)
	if err != nil {
		return nil, fmt.Sprintf("lane segment spawn failed: %v", err), nil
	}
	conn = ls.claim()
	if conn == nil {
		ls.shutdown()
		return nil, "fresh lane segment refused its first claim", nil
	}
	h.segs[path] = append(h.segs[path], ls)
	return conn, "", nil
}

// spawnSegment creates one shared segment, NUMA-places it, starts its
// sentinel child, waits for the ready beacon, and starts the demux loop.
// Called with the hub lock held: concurrent opens of the same manifest wait
// for the boot rather than over-spawning children.
func (h *laneHub) spawnSegment(path string, m vfs.Manifest, lanes, node int) (*laneSegment, error) {
	seg, err := shm.NewMPSC(lanes, 0, 0)
	if err != nil {
		return nil, err
	}
	if node >= 0 {
		seg.PlaceSegment(node)
	}
	cf, err := ipc.NewChannelFiles(true)
	if err != nil {
		seg.Close()
		return nil, err
	}
	fail := func(err error) (*laneSegment, error) {
		cf.Close()
		seg.Close()
		return nil, err
	}
	var cmd *exec.Cmd
	if m.Program.Exec != "" {
		cmd = exec.Command(m.Program.Exec, m.Program.Args...)
	} else {
		self, err := os.Executable()
		if err != nil {
			return fail(fmt.Errorf("locate own executable: %w", err))
		}
		cmd = exec.Command(self)
	}
	cmd.Env = append(os.Environ(),
		envChildMarker+"=1",
		envManifest+"="+path,
		envStrategy+"="+StrategyProcCtl.String(),
		envShmLanes+"="+strconv.Itoa(lanes),
		envShmNode+"="+strconv.Itoa(node),
	)
	cmd.ExtraFiles = append(cf.ChildFiles(), seg.ChildFiles()...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fail(fmt.Errorf("start lane sentinel: %w", err))
	}
	cf.CloseChildEnds()

	ls := &laneSegment{path: path, seg: seg, cf: cf, cmd: cmd, node: node}
	ls.mon = watchChild(cmd, func(waitErr error) {
		if !ls.closing.Load() {
			ls.fail(sentinelDeath(waitErr))
		}
	})
	if err := ls.awaitReady(); err != nil {
		ls.shutdown()
		return nil, err
	}
	go ls.demux()
	return ls, nil
}

// drain tears down every segment of the hub — idle or not; sessions still
// open observe the closure as a transport failure. The bench harness and
// tests call this (via DrainSharedSegments) so shared children and their
// descriptors do not outlive the run.
func (h *laneHub) drain() {
	h.mu.Lock()
	var all []*laneSegment
	for path, segs := range h.segs {
		all = append(all, segs...)
		delete(h.segs, path)
	}
	h.mu.Unlock()
	for _, ls := range all {
		ls.shutdown()
	}
}

// DrainSharedSegments retires every shared lane segment and reaps their
// sentinel children. Sessions still multiplexed on one fail as if the
// sentinel died. New opens spawn fresh segments.
func DrainSharedSegments() { lanePlane.drain() }

// laneSegment is one shared segment: the MPSC mapping, the sentinel child
// serving its lanes, and the demux loop routing reply records to sessions.
type laneSegment struct {
	path string
	seg  *shm.MPSCSegment
	cf   *ipc.ChannelFiles
	cmd  *exec.Cmd
	mon  *childMonitor
	node int // NUMA node the segment is bound to; -1 unplaced

	// routes fans reply records out to sessions lock-free on the hot path;
	// mu guards the lane lifecycle (claim, release, EOS bookkeeping) and the
	// dead flag ordering against teardown.
	routes [shm.MaxLanes]atomic.Pointer[laneConn]

	mu      sync.Mutex
	eos     [shm.MaxLanes]bool // reply-EOS arrived while the lane was still claimed
	dead    bool
	deadErr error
	closing atomic.Bool // suppresses the death hook during deliberate shutdown
}

// awaitReady consumes the child's boot beacon from the data-out pipe, with a
// deadline so a child that never boots cannot wedge every open of this
// manifest behind the hub lock.
func (ls *laneSegment) awaitReady() error {
	deadline := ls.cf.FromChild.SetReadDeadline(time.Now().Add(laneReadyTimeout)) == nil
	resp, err := wire.NewReader(ls.cf.FromChild).ReadResponse()
	if deadline {
		ls.cf.FromChild.SetReadDeadline(time.Time{})
	}
	if err != nil {
		return fmt.Errorf("core: lane sentinel never became ready: %w", err)
	}
	if resp.Seq != 0 || resp.Status != wire.StatusOK {
		return fmt.Errorf("core: lane sentinel sent %v/%d instead of ready beacon", resp.Status, resp.Seq)
	}
	return nil
}

func (ls *laneSegment) isDead() bool {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.dead
}

// claim allocates one lane and registers its session conduit.
func (ls *laneSegment) claim() *laneConn {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.dead {
		return nil
	}
	lane, ok := ls.seg.ClaimLane()
	if !ok {
		return nil
	}
	frames, data := ls.seg.Cmd().LaneProducers(lane)
	c := &laneConn{ls: ls, lane: lane, frames: frames, data: data, respQ: newByteQueue()}
	ls.eos[lane] = false
	ls.routes[lane].Store(c)
	return c
}

// release returns a session's lane. The lane parks in draining until the
// serving side's reply-EOS confirms no more of its bytes can arrive; only
// then can a successor session reuse the lane without inheriting stale
// replies.
func (ls *laneSegment) release(c *laneConn) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.routes[c.lane].Load() != c {
		return
	}
	ls.routes[c.lane].Store(nil)
	ls.seg.ReleaseLane(c.lane)
	if ls.eos[c.lane] {
		ls.eos[c.lane] = false
		ls.seg.QuiesceLane(c.lane)
	}
}

// demux is the segment's single consumer: it drains the reply queue and
// routes each record to its lane's session, pinned to the segment's NUMA
// node so the consumer-side cursor traffic stays on-package.
func (ls *laneSegment) demux() {
	reply := ls.seg.Reply()
	shm.PinConsumer(ls.node, func() {
		for {
			err := reply.Drain(func(lane uint16, kind shm.RecordKind, payload []byte) {
				switch kind {
				case shm.RecordFrame:
					// Hot path: lock-free route lookup, one copy into the
					// session's response queue. A cleared route (released
					// lane) drops the straggler on the floor.
					if c := ls.routes[lane].Load(); c != nil {
						c.respQ.write(payload)
					}
				case shm.RecordEOS:
					ls.laneQuiesced(lane)
				}
			})
			if err != nil {
				return // segment closed (teardown or death hook)
			}
		}
	})
}

// laneQuiesced handles the serving side's reply-EOS for a lane: the child's
// lane server exited and flushed everything, so no further bytes of this
// tenancy can arrive. If the session already released the lane it becomes
// reusable now; if the session still holds it (the server quit first — open
// failure, desync shutdown), the response stream ends so the session's mux
// observes EOF instead of hanging, and release() frees the lane later.
func (ls *laneSegment) laneQuiesced(lane uint16) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if c := ls.routes[lane].Load(); c != nil {
		c.respQ.close(nil)
		ls.eos[lane] = true
		return
	}
	ls.seg.QuiesceLane(lane)
	ls.eos[lane] = false
}

// fail is the death path: poison every session multiplexed on the segment,
// then tear the mapping down (which also wakes the demux loop and any
// parked producers). The hub drops the segment at its next acquire.
func (ls *laneSegment) fail(err error) {
	ls.mu.Lock()
	if ls.dead {
		ls.mu.Unlock()
		return
	}
	ls.dead = true
	ls.deadErr = err
	var conns []*laneConn
	for i := range ls.routes {
		if c := ls.routes[i].Load(); c != nil {
			conns = append(conns, c)
		}
	}
	ls.mu.Unlock()
	ls.seg.Close()
	ls.cf.Close()
	for _, c := range conns {
		c.respQ.close(err)
		if f := c.onFail.Load(); f != nil {
			(*f)(err)
		}
	}
}

// shutdown is the deliberate teardown (hub drain, failed boot): closing the
// segment delivers EOF to the child's intake, which exits; the pipes close
// behind it and the child is reaped.
func (ls *laneSegment) shutdown() {
	ls.closing.Store(true)
	ls.fail(errors.New("core: shared lane segment drained"))
	ls.mon.reap()
}

// laneConn is one session's conduit over a shared segment — the lane-plane
// counterpart of shmConn. Command frames and posted write payloads ride the
// shared command queue as records tagged with the session's lane (the two
// producers share one flush bracket, so a batch rings one doorbell);
// responses arrive from the demux loop through the session's private byte
// queue.
type laneConn struct {
	ls     *laneSegment
	lane   uint16
	frames *shm.Producer
	data   *shm.Producer
	respQ  *byteQueue
	once   sync.Once

	// onFail lets the owning transport poison its mux the moment the shared
	// sentinel dies — the per-session fan-out of the segment's death hook.
	onFail atomic.Pointer[func(error)]
}

var _ ipc.FrameConn = (*laneConn)(nil)

func (c *laneConn) Ctrl() io.Writer { return c.frames }
func (c *laneConn) Data() io.Writer { return c.data }
func (c *laneConn) Resp() io.Reader { return c.respQ }

func (c *laneConn) setOnFail(f func(error)) { c.onFail.Store(&f) }

// Close ends the session's tenancy of the lane: an in-band EOS tells the
// child's lane server to finish (it answers with its own reply-EOS, which
// quiesces the lane), the response queue releases the mux receive loop, and
// the lane is handed back to the segment. The shared child is deliberately
// NOT reaped — it keeps serving every other lane.
func (c *laneConn) Close() error {
	c.once.Do(func() {
		c.ls.seg.Cmd().SendEOS(c.lane) // best-effort; the segment may be dead
		c.respQ.close(nil)
		c.ls.release(c)
	})
	return nil
}
