package core_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/vfs"
	"repro/internal/wire"
)

func TestRemoteDownMidSession(t *testing.T) {
	srv := remote.NewFileServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Put("obj", []byte("alive"))

	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "none",
		Source:  vfs.SourceSpec{Kind: "tcp", Addr: addr, Path: "obj"},
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	buf := make([]byte, 5)
	if _, err := h.ReadAt(buf, 0); err != nil {
		t.Fatalf("healthy read: %v", err)
	}

	// The source vanishes mid-session; operations fail but nothing hangs.
	srv.Close()
	if _, err := h.ReadAt(buf, 0); err == nil {
		t.Error("read succeeded after source shutdown")
	}
	done := make(chan error, 1)
	go func() { done <- h.Close() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung after source shutdown")
	}
}

func TestRemoteUnreachableAtOpen(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "none",
		Source:  vfs.SourceSpec{Kind: "tcp", Addr: "127.0.0.1:1", Path: "obj"}, // nothing listens
	})

	// In-process strategies fail at Open, when the program binds its source.
	if _, err := core.Open(path, core.Options{Strategy: core.StrategyThread}); err == nil {
		t.Error("thread Open succeeded with unreachable source")
	}

	// The process strategy spawns first; the failure surfaces on the first
	// operation (the child exits, the channel drops).
	h, err := core.Open(path, core.Options{Strategy: core.StrategyProcCtl})
	if err != nil {
		t.Skipf("procctl Open failed eagerly, also acceptable: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := h.ReadAt(buf, 0); err == nil {
		t.Error("procctl read succeeded with unreachable source")
	}
	done := make(chan error, 1)
	go func() { done <- h.Close() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung after child failure")
	}
}

func TestFaultInjectionSurfacesAndRecovers(t *testing.T) {
	srv := remote.NewFileServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Put("obj", []byte("payload"))

	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "none",
		Source:  vfs.SourceSpec{Kind: "tcp", Addr: addr, Path: "obj"},
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	srv.FailNext(errors.New("injected disk failure"))
	buf := make([]byte, 7)
	if _, err := h.ReadAt(buf, 0); err == nil {
		t.Error("injected failure not observed through the sentinel")
	}
	// One-shot fault: the session recovers on the next operation.
	if _, err := h.ReadAt(buf, 0); err != nil || string(buf) != "payload" {
		t.Errorf("recovery read = (%q, %v)", buf, err)
	}
}

func TestLargeTransfersChunkAcrossControlChannel(t *testing.T) {
	// Transfers beyond the frame payload limit must be chunked transparently
	// by the client side of each strategy.
	payload := bytes.Repeat([]byte{0xA5}, wire.MaxPayload+64*1024)
	for _, strategy := range []core.Strategy{core.StrategyThread, core.StrategyProcCtl} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			if testing.Short() && strategy == core.StrategyProcCtl {
				t.Skip("large subprocess transfer in -short mode")
			}
			path := createAF(t, vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "passthrough"},
				Cache:   "memory",
			})
			h, err := core.Open(path, core.Options{Strategy: strategy})
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()

			if _, err := h.WriteAt(payload, 0); err != nil {
				t.Fatalf("WriteAt: %v", err)
			}
			if strategy == core.StrategyProcCtl {
				// Writes are asynchronous; force completion before reading.
				if err := h.Sync(); err != nil {
					t.Fatalf("Sync: %v", err)
				}
			}
			back := make([]byte, len(payload))
			if _, err := h.ReadAt(back, 0); err != nil && !errors.Is(err, io.EOF) {
				t.Fatalf("ReadAt: %v", err)
			}
			if !bytes.Equal(back, payload) {
				t.Error("large transfer corrupted")
			}
			if size, err := h.Size(); err != nil || size != int64(len(payload)) {
				t.Errorf("Size = (%d, %v), want %d", size, err, len(payload))
			}
		})
	}
}

func TestThreadReadAtEOFSemantics(t *testing.T) {
	// Pin the os.File-compatible short-read contract end to end (this is
	// the bug the equivalence property test caught).
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "disk",
	})
	seedData(t, path, []byte("0123456789"))
	for _, strategy := range positionedStrategies {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			h, err := core.Open(path, core.Options{Strategy: strategy})
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()
			buf := make([]byte, 8)
			n, err := h.ReadAt(buf, 6)
			if n != 4 || !errors.Is(err, io.EOF) {
				t.Errorf("short ReadAt = (%d, %v), want (4, EOF)", n, err)
			}
			if string(buf[:n]) != "6789" {
				t.Errorf("data = %q", buf[:n])
			}
			if _, err := h.ReadAt(buf, 100); !errors.Is(err, io.EOF) {
				t.Errorf("past-end ReadAt err = %v, want EOF", err)
			}
		})
	}
}

func TestConcurrentHandleUse(t *testing.T) {
	// A Handle serializes internally, so concurrent goroutines sharing one
	// handle must not race or corrupt the session.
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "memory",
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.WriteAt(bytes.Repeat([]byte("x"), 4096), 0); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			buf := make([]byte, 64)
			for i := 0; i < 100; i++ {
				off := int64((g*100 + i) % 4000)
				if _, err := h.ReadAt(buf, off); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Errorf("goroutine: %v", err)
		}
	}
}

func TestAllOpsFailAfterClose(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "memory",
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	checks := map[string]error{}
	_, checks["Read"] = h.Read(make([]byte, 1))
	_, checks["Write"] = h.Write([]byte("x"))
	_, checks["ReadAt"] = h.ReadAt(make([]byte, 1), 0)
	_, checks["WriteAt"] = h.WriteAt([]byte("x"), 0)
	_, checks["Seek"] = h.Seek(0, io.SeekStart)
	_, checks["Size"] = h.Size()
	checks["Truncate"] = h.Truncate(0)
	checks["Sync"] = h.Sync()
	checks["Lock"] = h.Lock(0, 1)
	checks["Unlock"] = h.Unlock(0, 1)
	_, checks["Control"] = h.Control(nil)
	for op, err := range checks {
		if !errors.Is(err, wire.ErrClosed) {
			t.Errorf("%s after close err = %v, want ErrClosed", op, err)
		}
	}
}

func TestSeekErrors(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "memory",
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Seek(0, 99); err == nil {
		t.Error("Seek with bogus whence succeeded")
	}
	if _, err := h.Seek(-10, io.SeekStart); err == nil {
		t.Error("Seek to negative position succeeded")
	}
	// The handle stays usable after rejected seeks.
	if _, err := h.Write([]byte("still fine")); err != nil {
		t.Errorf("Write after rejected seeks: %v", err)
	}
}

func TestThreadSentinelGoroutineExitsOnClose(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "memory",
	})
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		h, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Close joins the sentinel goroutine synchronously, so the count must
	// return to (about) the baseline immediately.
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Errorf("goroutines grew %d -> %d; sentinel goroutines leaked", before, after)
	}
}

func TestProcessStreamIntegrityProperty(t *testing.T) {
	// Whatever byte sequence an application writes through a plain-process
	// sentinel — in arbitrary chunk sizes — lands intact in the data part,
	// and streams back intact on a later open. Three seeds keep subprocess
	// cost bounded.
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			payload := make([]byte, 16*1024+rng.Intn(8192))
			rng.Read(payload)

			path := createAF(t, vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "passthrough"},
				Cache:   "disk",
			})
			h, err := core.Open(path, core.Options{Strategy: core.StrategyProcess})
			if err != nil {
				t.Fatal(err)
			}
			rest := payload
			for len(rest) > 0 {
				n := rng.Intn(3000) + 1
				if n > len(rest) {
					n = len(rest)
				}
				if _, err := h.Write(rest[:n]); err != nil {
					t.Fatalf("Write: %v", err)
				}
				rest = rest[n:]
			}
			if err := h.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if got := readData(t, path); !bytes.Equal(got, payload) {
				t.Fatalf("data part: %d bytes, want %d; corrupted", len(got), len(payload))
			}

			// Stream it back through another subprocess sentinel.
			h2, err := core.Open(path, core.Options{Strategy: core.StrategyProcess})
			if err != nil {
				t.Fatal(err)
			}
			defer h2.Close()
			back, err := io.ReadAll(h2)
			if err != nil {
				t.Fatalf("ReadAll: %v", err)
			}
			if !bytes.Equal(back, payload) {
				t.Fatal("stream-back corrupted")
			}
		})
	}
}

func TestMemoryCachePersistsToDataPart(t *testing.T) {
	// Memory cache mode with no remote source uses the data part as its
	// persistent home: contents written in one session survive to the next.
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "memory",
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	h2, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	got, err := io.ReadAll(h2)
	if err != nil || string(got) != "persisted" {
		t.Errorf("second session = (%q, %v)", got, err)
	}
}
