package core

import (
	"errors"
	"io"
	"testing"

	"repro/internal/wire"
)

// dispatchT runs one dispatch and settles it for test inspection: the
// response payload is copied out of the pooled buffer before release, the way
// a transport ships or copies it before recycling.
func dispatchT(d *dispatcher, req *wire.Request) wire.Response {
	resp, release := d.dispatch(req)
	if len(resp.Data) > 0 {
		resp.Data = append([]byte(nil), resp.Data...)
	}
	release()
	return resp
}

// fakeHandler records calls and returns scripted results.
type fakeHandler struct {
	data      []byte
	syncErr   error
	closed    bool
	truncated int64
}

func (f *fakeHandler) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *fakeHandler) WriteAt(p []byte, off int64) (int, error) {
	end := off + int64(len(p))
	if end > int64(len(f.data)) {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:end], p)
	return len(p), nil
}

func (f *fakeHandler) Size() (int64, error) { return int64(len(f.data)), nil }

func (f *fakeHandler) Truncate(n int64) error {
	f.truncated = n
	if n < int64(len(f.data)) {
		f.data = f.data[:n]
	}
	return nil
}

func (f *fakeHandler) Sync() error { return f.syncErr }

func (f *fakeHandler) Close() error {
	f.closed = true
	return nil
}

// lockingFake adds Locker and Controller.
type lockingFake struct {
	fakeHandler
	locked   [][2]int64
	ctrlSeen []byte
}

func (l *lockingFake) Lock(off, n int64) error {
	l.locked = append(l.locked, [2]int64{off, n})
	return nil
}

func (l *lockingFake) Unlock(off, n int64) error {
	for i, sp := range l.locked {
		if sp[0] == off && sp[1] == n {
			l.locked = append(l.locked[:i], l.locked[i+1:]...)
			return nil
		}
	}
	return errors.New("not held")
}

func (l *lockingFake) Control(req []byte) ([]byte, error) {
	l.ctrlSeen = append([]byte(nil), req...)
	return []byte("ack"), nil
}

func TestDispatchRead(t *testing.T) {
	h := &fakeHandler{data: []byte("0123456789")}
	d := newDispatcher(h)

	resp := dispatchT(d, &wire.Request{Op: wire.OpRead, Seq: 3, Off: 2, N: 4})
	if resp.Status != wire.StatusOK || resp.Seq != 3 || string(resp.Data) != "2345" || resp.N != 4 {
		t.Errorf("read resp = %+v", resp)
	}

	// Short read at EOF keeps its data and reports EOF.
	resp = dispatchT(d, &wire.Request{Op: wire.OpRead, Off: 8, N: 4})
	if resp.Status != wire.StatusEOF || string(resp.Data) != "89" || resp.N != 2 {
		t.Errorf("eof read resp = %+v", resp)
	}

	// Past-end read is a clean EOF.
	resp = dispatchT(d, &wire.Request{Op: wire.OpRead, Off: 100, N: 4})
	if resp.Status != wire.StatusEOF || resp.N != 0 {
		t.Errorf("past-end resp = %+v", resp)
	}
}

func TestDispatchReadBadSize(t *testing.T) {
	d := newDispatcher(&fakeHandler{})
	for _, n := range []int64{-1, wire.MaxPayload + 1} {
		resp := dispatchT(d, &wire.Request{Op: wire.OpRead, N: n})
		if resp.Status != wire.StatusError {
			t.Errorf("read N=%d status = %v, want error", n, resp.Status)
		}
	}
}

func TestDispatchWriteSizeTruncateSync(t *testing.T) {
	h := &fakeHandler{}
	d := newDispatcher(h)

	resp := dispatchT(d, &wire.Request{Op: wire.OpWrite, Off: 0, Data: []byte("abc")})
	if resp.Status != wire.StatusOK || resp.N != 3 {
		t.Errorf("write resp = %+v", resp)
	}
	resp = dispatchT(d, &wire.Request{Op: wire.OpSize})
	if resp.Status != wire.StatusOK || resp.N != 3 {
		t.Errorf("size resp = %+v", resp)
	}
	resp = dispatchT(d, &wire.Request{Op: wire.OpTruncate, Off: 1})
	if resp.Status != wire.StatusOK || h.truncated != 1 {
		t.Errorf("truncate resp = %+v, handler saw %d", resp, h.truncated)
	}
	resp = dispatchT(d, &wire.Request{Op: wire.OpSync})
	if resp.Status != wire.StatusOK {
		t.Errorf("sync resp = %+v", resp)
	}
	h.syncErr = errors.New("flush failed")
	resp = dispatchT(d, &wire.Request{Op: wire.OpSync})
	if resp.Status != wire.StatusError || resp.Msg != "flush failed" {
		t.Errorf("failed sync resp = %+v", resp)
	}
}

func TestDispatchLockAndControlOptionalInterfaces(t *testing.T) {
	plain := newDispatcher(&fakeHandler{})
	for _, op := range []wire.Op{wire.OpLock, wire.OpUnlock, wire.OpControl} {
		resp := dispatchT(plain, &wire.Request{Op: op})
		if resp.Status != wire.StatusUnsupported {
			t.Errorf("%v on plain handler status = %v, want unsupported", op, resp.Status)
		}
	}

	lf := &lockingFake{}
	rich := newDispatcher(lf)
	resp := dispatchT(rich, &wire.Request{Op: wire.OpLock, Off: 4, N: 8})
	if resp.Status != wire.StatusOK || len(lf.locked) != 1 {
		t.Errorf("lock resp = %+v, locked = %v", resp, lf.locked)
	}
	resp = dispatchT(rich, &wire.Request{Op: wire.OpUnlock, Off: 4, N: 8})
	if resp.Status != wire.StatusOK || len(lf.locked) != 0 {
		t.Errorf("unlock resp = %+v", resp)
	}
	resp = dispatchT(rich, &wire.Request{Op: wire.OpUnlock, Off: 9, N: 9})
	if resp.Status != wire.StatusError {
		t.Errorf("unheld unlock status = %v", resp.Status)
	}
	resp = dispatchT(rich, &wire.Request{Op: wire.OpControl, Data: []byte("cmd")})
	if resp.Status != wire.StatusOK || string(resp.Data) != "ack" || string(lf.ctrlSeen) != "cmd" {
		t.Errorf("control resp = %+v", resp)
	}
}

func TestDispatchClose(t *testing.T) {
	h := &fakeHandler{}
	d := newDispatcher(h)
	resp := dispatchT(d, &wire.Request{Op: wire.OpClose, Seq: 9})
	if resp.Status != wire.StatusOK || resp.Seq != 9 || !h.closed {
		t.Errorf("close resp = %+v, closed = %v", resp, h.closed)
	}
	// After close, operations report the session closed; a second close stays
	// a success and never reaches the handler twice.
	resp = dispatchT(d, &wire.Request{Op: wire.OpRead, N: 4})
	if resp.Status != wire.StatusClosed {
		t.Errorf("post-close read status = %v, want closed", resp.Status)
	}
	resp = dispatchT(d, &wire.Request{Op: wire.OpClose})
	if resp.Status != wire.StatusOK {
		t.Errorf("second close status = %v", resp.Status)
	}
}

func TestDispatchUnknownOp(t *testing.T) {
	d := newDispatcher(&fakeHandler{})
	resp := dispatchT(d, &wire.Request{Op: wire.OpStat})
	if resp.Status != wire.StatusUnsupported {
		t.Errorf("stat status = %v, want unsupported", resp.Status)
	}
	resp = dispatchT(d, &wire.Request{Op: wire.Op(99)})
	if resp.Status != wire.StatusUnsupported {
		t.Errorf("bogus op status = %v, want unsupported", resp.Status)
	}
}

func TestDispatchReadBuffersIndependent(t *testing.T) {
	// Read responses draw from the buffer pool: two dispatches whose releases
	// are still pending own distinct buffers, so concurrent responses never
	// scribble on each other (the old single reused buffer required lockstep
	// consumption).
	h := &fakeHandler{data: []byte("abcdef")}
	d := newDispatcher(h)
	first, rel1 := d.dispatch(&wire.Request{Op: wire.OpRead, Off: 0, N: 3})
	second, rel2 := d.dispatch(&wire.Request{Op: wire.OpRead, Off: 3, N: 3})
	if string(first.Data) != "abc" || string(second.Data) != "def" {
		t.Errorf("reads = %q, %q", first.Data, second.Data)
	}
	if &first.Data[0] == &second.Data[0] {
		t.Error("in-flight read responses share a buffer")
	}
	rel1()
	rel2()
}

func TestPrefetcherNilSafe(t *testing.T) {
	var p *prefetcher
	p.invalidate()
	p.afterRead(0, 16, 16, false)
	var resp wire.Response
	if _, ok := p.serve(&wire.Request{Op: wire.OpRead}, &resp); ok {
		t.Error("nil prefetcher served a request")
	}
	if _, _, ok := p.readAt(make([]byte, 8), 0); ok {
		t.Error("nil prefetcher served a readAt")
	}
}

func TestPrefetcherSentinelServe(t *testing.T) {
	d := newDispatcher(&fakeHandler{data: []byte("0123456789")})
	p := newPrefetcher(d.readAt, false)

	var resp wire.Response
	// Cold window: nothing to serve yet.
	if _, ok := p.serve(&wire.Request{Op: wire.OpRead, Off: 0, N: 4}, &resp); ok {
		t.Fatal("cold prefetcher served a request")
	}
	// First sequential read (from offset 0) arms a one-block fill at 4.
	p.afterRead(0, 4, 4, false)
	rel, ok := p.serve(&wire.Request{Op: wire.OpRead, Off: 4, N: 4, Seq: 7}, &resp)
	if !ok {
		t.Fatal("prefetcher did not serve the next sequential read")
	}
	if resp.Status != wire.StatusOK || string(resp.Data) != "4567" || resp.N != 4 || resp.Seq != 7 {
		t.Errorf("served resp = %+v", resp)
	}
	rel()

	// The window grows past EOF; the short tail serves with StatusEOF.
	p.afterRead(4, 4, 4, false)
	resp = wire.Response{}
	rel, ok = p.serve(&wire.Request{Op: wire.OpRead, Off: 8, N: 4}, &resp)
	if !ok {
		t.Fatal("prefetcher did not serve the EOF tail")
	}
	if resp.Status != wire.StatusEOF || string(resp.Data) != "89" || resp.N != 2 {
		t.Errorf("eof serve = %+v", resp)
	}
	rel()

	// Reads entirely past a window that ends at EOF serve zero bytes.
	resp = wire.Response{}
	rel, ok = p.serve(&wire.Request{Op: wire.OpRead, Off: 100, N: 4}, &resp)
	if !ok {
		t.Fatal("prefetcher did not serve the past-end read")
	}
	if resp.Status != wire.StatusEOF || resp.N != 0 {
		t.Errorf("past-end serve = %+v", resp)
	}
	rel()

	// Invalidate discards the window.
	p.afterRead(0, 4, 4, false)
	p.invalidate()
	if _, ok := p.serve(&wire.Request{Op: wire.OpRead, Off: 4, N: 4}, &resp); ok {
		t.Error("prefetcher served after invalidate")
	}
}

func TestPrefetcherRandomAccessStops(t *testing.T) {
	calls := 0
	read := func(p []byte, off int64) (int, error) {
		calls++
		return len(p), nil
	}
	p := newPrefetcher(read, false)
	// A non-sequential read resets the streak: no fill is issued.
	p.afterRead(1000, 4, 4, false)
	if calls != 0 {
		t.Errorf("random access triggered %d fills", calls)
	}
	// The follow-up at the new expected offset is sequential again.
	p.afterRead(1004, 4, 4, false)
	if calls != 1 {
		t.Errorf("resumed sequential access triggered %d fills, want 1", calls)
	}
}

func TestPrefetcherWindowScaling(t *testing.T) {
	for _, tt := range []struct {
		streak, block, want int
	}{
		{0, 512, 0},
		{1, 512, 1024},
		{2, 512, 2048},
		{3, 512, 4096},
		{5, 512, prefetchMaxBlocks * 512},
		{10, 512, prefetchMaxBlocks * 512},
		{10, 8192, prefetchMaxBytes},
	} {
		if got := windowTarget(tt.streak, tt.block); got != tt.want {
			t.Errorf("windowTarget(%d, %d) = %d, want %d", tt.streak, tt.block, got, tt.want)
		}
	}
}

func TestPrefetcherClientReadAt(t *testing.T) {
	backing := []byte("abcdefghijklmnopqrstuvwxyz")
	calls := 0
	read := func(p []byte, off int64) (int, error) {
		calls++
		if off >= int64(len(backing)) {
			return 0, io.EOF
		}
		n := copy(p, backing[off:])
		if n < len(p) {
			return n, io.EOF
		}
		return n, nil
	}
	// Synchronous fills make the hit pattern deterministic.
	p := newPrefetcher(read, false)

	dst := make([]byte, 4)
	if _, _, ok := p.readAt(dst, 0); ok {
		t.Fatal("cold window served a read")
	}
	// The transport reads through and reports; the fill covers [4, 8).
	p.afterRead(0, 4, 4, false)
	n, err, ok := p.readAt(dst, 4)
	if !ok || n != 4 || err != nil || string(dst) != "efgh" {
		t.Fatalf("window read = %d %v %v %q", n, err, ok, dst)
	}
	// Serving from the window keeps extending it; the whole file streams
	// with no further misses.
	off := int64(8)
	var got []byte
	for {
		n, err, ok := p.readAt(dst, off)
		if !ok {
			t.Fatalf("window miss at %d", off)
		}
		got = append(got, dst[:n]...)
		off += int64(n)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("read error: %v", err)
			}
			break
		}
	}
	if string(got) != string(backing[8:]) {
		t.Errorf("streamed %q, want %q", got, backing[8:])
	}
}

// countingHandler counts backing WriteAt calls for coalescing assertions.
type countingHandler struct {
	fakeHandler
	writes   int
	writeErr error
}

func (c *countingHandler) WriteAt(p []byte, off int64) (int, error) {
	c.writes++
	if c.writeErr != nil {
		return 0, c.writeErr
	}
	return c.fakeHandler.WriteAt(p, off)
}

func TestWriteBehindCoalesces(t *testing.T) {
	h := &countingHandler{}
	d := newDispatcher(h)
	d.enableWriteBehind()

	// 16 adjacent 8-byte writes coalesce into zero backing writes until the
	// sync barrier flushes the single 128-byte run.
	for i := 0; i < 16; i++ {
		if _, err := d.writeAt([]byte("01234567"), int64(i*8)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if h.writes != 0 {
		t.Fatalf("backing writes before sync = %d, want 0", h.writes)
	}
	if err := d.sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if h.writes != 1 {
		t.Errorf("backing writes after sync = %d, want 1", h.writes)
	}
	if len(h.data) != 128 {
		t.Errorf("backing size = %d, want 128", len(h.data))
	}
}

func TestWriteBehindReadYourWrites(t *testing.T) {
	h := &countingHandler{}
	d := newDispatcher(h)
	d.enableWriteBehind()

	if _, err := d.writeAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	// An overlapping read flushes the run first.
	buf := make([]byte, 5)
	n, err := d.readAt(buf, 0)
	if n != 5 || (err != nil && !errors.Is(err, io.EOF)) || string(buf) != "hello" {
		t.Fatalf("read-after-write = %d %v %q", n, err, buf)
	}
	if h.writes != 1 {
		t.Errorf("overlapping read flushed %d backing writes, want 1", h.writes)
	}
	// A disjoint read leaves the buffer alone.
	if _, err := d.writeAt([]byte("world"), 100); err != nil {
		t.Fatal(err)
	}
	d.readAt(buf, 0)
	if h.writes != 1 {
		t.Errorf("disjoint read flushed the run (writes = %d)", h.writes)
	}
}

func TestWriteBehindNonAdjacentAndDeferredError(t *testing.T) {
	h := &countingHandler{}
	d := newDispatcher(h)
	d.enableWriteBehind()

	// A non-adjacent write flushes the previous run and starts a new one.
	d.writeAt([]byte("aa"), 0)
	d.writeAt([]byte("bb"), 50)
	if h.writes != 1 {
		t.Fatalf("non-adjacent write flushed %d runs, want 1", h.writes)
	}

	// Backing failure is deferred: the write reports success, the next sync
	// carries the error, and the one after is clean again.
	h.writeErr = errors.New("disk full")
	if _, err := d.writeAt([]byte("cc"), 52); err != nil {
		t.Fatalf("buffered write reported %v", err)
	}
	if err := d.sync(); err == nil || err.Error() != "disk full" {
		t.Errorf("sync err = %v, want disk full", err)
	}
	h.writeErr = nil
	if err := d.sync(); err != nil {
		t.Errorf("second sync err = %v", err)
	}
}

func TestWriteBehindLargeWritesBypass(t *testing.T) {
	h := &countingHandler{}
	d := newDispatcher(h)
	d.enableWriteBehind()

	d.writeAt([]byte("aa"), 0)
	big := make([]byte, writeBehindMax)
	if _, err := d.writeAt(big, 2); err != nil {
		t.Fatal(err)
	}
	// The pending small run flushed first, then the large write went
	// straight through: two backing writes, correct order.
	if h.writes != 2 {
		t.Errorf("backing writes = %d, want 2", h.writes)
	}
	if string(h.data[:2]) != "aa" {
		t.Errorf("backing prefix = %q", h.data[:2])
	}
}

func TestWriteBehindDispatchOps(t *testing.T) {
	h := &countingHandler{}
	d := newDispatcher(h)
	d.enableWriteBehind()

	// Writes through dispatch() buffer the same way.
	resp := dispatchT(d, &wire.Request{Op: wire.OpWrite, Off: 0, Data: []byte("abc")})
	if resp.Status != wire.StatusOK || resp.N != 3 {
		t.Fatalf("write resp = %+v", resp)
	}
	if h.writes != 0 {
		t.Fatalf("dispatch write went straight through")
	}
	// Size flushes so buffered bytes count.
	resp = dispatchT(d, &wire.Request{Op: wire.OpSize})
	if resp.Status != wire.StatusOK || resp.N != 3 {
		t.Errorf("size resp = %+v", resp)
	}
	// Close settles the buffer before the handler closes.
	dispatchT(d, &wire.Request{Op: wire.OpWrite, Off: 3, Data: []byte("def")})
	resp = dispatchT(d, &wire.Request{Op: wire.OpClose})
	if resp.Status != wire.StatusOK || !h.closed {
		t.Fatalf("close resp = %+v", resp)
	}
	if string(h.data) != "abcdef" {
		t.Errorf("backing data = %q, want abcdef", h.data)
	}
}
