package core

import (
	"errors"
	"io"
	"testing"

	"repro/internal/wire"
)

// dispatchT runs one dispatch and settles it for test inspection: the
// response payload is copied out of the pooled buffer before release, the way
// a transport ships or copies it before recycling.
func dispatchT(d *dispatcher, req *wire.Request) wire.Response {
	resp, release := d.dispatch(req)
	if len(resp.Data) > 0 {
		resp.Data = append([]byte(nil), resp.Data...)
	}
	release()
	return resp
}

// fakeHandler records calls and returns scripted results.
type fakeHandler struct {
	data      []byte
	syncErr   error
	closed    bool
	truncated int64
}

func (f *fakeHandler) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *fakeHandler) WriteAt(p []byte, off int64) (int, error) {
	end := off + int64(len(p))
	if end > int64(len(f.data)) {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:end], p)
	return len(p), nil
}

func (f *fakeHandler) Size() (int64, error) { return int64(len(f.data)), nil }

func (f *fakeHandler) Truncate(n int64) error {
	f.truncated = n
	if n < int64(len(f.data)) {
		f.data = f.data[:n]
	}
	return nil
}

func (f *fakeHandler) Sync() error { return f.syncErr }

func (f *fakeHandler) Close() error {
	f.closed = true
	return nil
}

// lockingFake adds Locker and Controller.
type lockingFake struct {
	fakeHandler
	locked   [][2]int64
	ctrlSeen []byte
}

func (l *lockingFake) Lock(off, n int64) error {
	l.locked = append(l.locked, [2]int64{off, n})
	return nil
}

func (l *lockingFake) Unlock(off, n int64) error {
	for i, sp := range l.locked {
		if sp[0] == off && sp[1] == n {
			l.locked = append(l.locked[:i], l.locked[i+1:]...)
			return nil
		}
	}
	return errors.New("not held")
}

func (l *lockingFake) Control(req []byte) ([]byte, error) {
	l.ctrlSeen = append([]byte(nil), req...)
	return []byte("ack"), nil
}

func TestDispatchRead(t *testing.T) {
	h := &fakeHandler{data: []byte("0123456789")}
	d := newDispatcher(h)

	resp := dispatchT(d, &wire.Request{Op: wire.OpRead, Seq: 3, Off: 2, N: 4})
	if resp.Status != wire.StatusOK || resp.Seq != 3 || string(resp.Data) != "2345" || resp.N != 4 {
		t.Errorf("read resp = %+v", resp)
	}

	// Short read at EOF keeps its data and reports EOF.
	resp = dispatchT(d, &wire.Request{Op: wire.OpRead, Off: 8, N: 4})
	if resp.Status != wire.StatusEOF || string(resp.Data) != "89" || resp.N != 2 {
		t.Errorf("eof read resp = %+v", resp)
	}

	// Past-end read is a clean EOF.
	resp = dispatchT(d, &wire.Request{Op: wire.OpRead, Off: 100, N: 4})
	if resp.Status != wire.StatusEOF || resp.N != 0 {
		t.Errorf("past-end resp = %+v", resp)
	}
}

func TestDispatchReadBadSize(t *testing.T) {
	d := newDispatcher(&fakeHandler{})
	for _, n := range []int64{-1, wire.MaxPayload + 1} {
		resp := dispatchT(d, &wire.Request{Op: wire.OpRead, N: n})
		if resp.Status != wire.StatusError {
			t.Errorf("read N=%d status = %v, want error", n, resp.Status)
		}
	}
}

func TestDispatchWriteSizeTruncateSync(t *testing.T) {
	h := &fakeHandler{}
	d := newDispatcher(h)

	resp := dispatchT(d, &wire.Request{Op: wire.OpWrite, Off: 0, Data: []byte("abc")})
	if resp.Status != wire.StatusOK || resp.N != 3 {
		t.Errorf("write resp = %+v", resp)
	}
	resp = dispatchT(d, &wire.Request{Op: wire.OpSize})
	if resp.Status != wire.StatusOK || resp.N != 3 {
		t.Errorf("size resp = %+v", resp)
	}
	resp = dispatchT(d, &wire.Request{Op: wire.OpTruncate, Off: 1})
	if resp.Status != wire.StatusOK || h.truncated != 1 {
		t.Errorf("truncate resp = %+v, handler saw %d", resp, h.truncated)
	}
	resp = dispatchT(d, &wire.Request{Op: wire.OpSync})
	if resp.Status != wire.StatusOK {
		t.Errorf("sync resp = %+v", resp)
	}
	h.syncErr = errors.New("flush failed")
	resp = dispatchT(d, &wire.Request{Op: wire.OpSync})
	if resp.Status != wire.StatusError || resp.Msg != "flush failed" {
		t.Errorf("failed sync resp = %+v", resp)
	}
}

func TestDispatchLockAndControlOptionalInterfaces(t *testing.T) {
	plain := newDispatcher(&fakeHandler{})
	for _, op := range []wire.Op{wire.OpLock, wire.OpUnlock, wire.OpControl} {
		resp := dispatchT(plain, &wire.Request{Op: op})
		if resp.Status != wire.StatusUnsupported {
			t.Errorf("%v on plain handler status = %v, want unsupported", op, resp.Status)
		}
	}

	lf := &lockingFake{}
	rich := newDispatcher(lf)
	resp := dispatchT(rich, &wire.Request{Op: wire.OpLock, Off: 4, N: 8})
	if resp.Status != wire.StatusOK || len(lf.locked) != 1 {
		t.Errorf("lock resp = %+v, locked = %v", resp, lf.locked)
	}
	resp = dispatchT(rich, &wire.Request{Op: wire.OpUnlock, Off: 4, N: 8})
	if resp.Status != wire.StatusOK || len(lf.locked) != 0 {
		t.Errorf("unlock resp = %+v", resp)
	}
	resp = dispatchT(rich, &wire.Request{Op: wire.OpUnlock, Off: 9, N: 9})
	if resp.Status != wire.StatusError {
		t.Errorf("unheld unlock status = %v", resp.Status)
	}
	resp = dispatchT(rich, &wire.Request{Op: wire.OpControl, Data: []byte("cmd")})
	if resp.Status != wire.StatusOK || string(resp.Data) != "ack" || string(lf.ctrlSeen) != "cmd" {
		t.Errorf("control resp = %+v", resp)
	}
}

func TestDispatchClose(t *testing.T) {
	h := &fakeHandler{}
	d := newDispatcher(h)
	resp := dispatchT(d, &wire.Request{Op: wire.OpClose, Seq: 9})
	if resp.Status != wire.StatusOK || resp.Seq != 9 || !h.closed {
		t.Errorf("close resp = %+v, closed = %v", resp, h.closed)
	}
	// After close, operations report the session closed; a second close stays
	// a success and never reaches the handler twice.
	resp = dispatchT(d, &wire.Request{Op: wire.OpRead, N: 4})
	if resp.Status != wire.StatusClosed {
		t.Errorf("post-close read status = %v, want closed", resp.Status)
	}
	resp = dispatchT(d, &wire.Request{Op: wire.OpClose})
	if resp.Status != wire.StatusOK {
		t.Errorf("second close status = %v", resp.Status)
	}
}

func TestDispatchUnknownOp(t *testing.T) {
	d := newDispatcher(&fakeHandler{})
	resp := dispatchT(d, &wire.Request{Op: wire.OpStat})
	if resp.Status != wire.StatusUnsupported {
		t.Errorf("stat status = %v, want unsupported", resp.Status)
	}
	resp = dispatchT(d, &wire.Request{Op: wire.Op(99)})
	if resp.Status != wire.StatusUnsupported {
		t.Errorf("bogus op status = %v, want unsupported", resp.Status)
	}
}

func TestDispatchReadBuffersIndependent(t *testing.T) {
	// Read responses draw from the buffer pool: two dispatches whose releases
	// are still pending own distinct buffers, so concurrent responses never
	// scribble on each other (the old single reused buffer required lockstep
	// consumption).
	h := &fakeHandler{data: []byte("abcdef")}
	d := newDispatcher(h)
	first, rel1 := d.dispatch(&wire.Request{Op: wire.OpRead, Off: 0, N: 3})
	second, rel2 := d.dispatch(&wire.Request{Op: wire.OpRead, Off: 3, N: 3})
	if string(first.Data) != "abc" || string(second.Data) != "def" {
		t.Errorf("reads = %q, %q", first.Data, second.Data)
	}
	if &first.Data[0] == &second.Data[0] {
		t.Error("in-flight read responses share a buffer")
	}
	rel1()
	rel2()
}

func TestReadBufPoolBounds(t *testing.T) {
	// Requests beyond the pooled size get a one-shot allocation.
	big, release := getReadBuf(pooledBufSize + 1)
	if len(big) != pooledBufSize+1 {
		t.Fatalf("oversized get length = %d", len(big))
	}
	release()

	// A buffer that somehow grew past the payload bound is dropped, not
	// parked; the pool never hands out more than wire.MaxPayload capacity.
	huge := make([]byte, wire.MaxPayload+1)
	putReadBuf(&huge)
	b, rel := getReadBuf(8)
	if len(b) != 8 || cap(b) > wire.MaxPayload {
		t.Errorf("pooled get len = %d cap = %d", len(b), cap(b))
	}
	rel()
}

func TestPrefetchStateNilSafe(t *testing.T) {
	var p *prefetchState
	p.invalidate()
	p.fill(newDispatcher(&fakeHandler{}), 0, 16)
	var resp wire.Response
	if p.serve(&wire.Request{Op: wire.OpRead}, &resp) {
		t.Error("nil prefetch served a request")
	}
}

func TestPrefetchStateLifecycle(t *testing.T) {
	h := newDispatcher(&fakeHandler{data: []byte("0123456789")})
	p := &prefetchState{}

	p.fill(h, 4, 4)
	var resp wire.Response
	if !p.serve(&wire.Request{Op: wire.OpRead, Off: 4, N: 4, Seq: 7}, &resp) {
		t.Fatal("prefetch did not serve a matching read")
	}
	if resp.Status != wire.StatusOK || string(resp.Data) != "4567" || resp.Seq != 7 {
		t.Errorf("served resp = %+v", resp)
	}
	// Single use: the same request misses until refilled.
	if p.serve(&wire.Request{Op: wire.OpRead, Off: 4, N: 4}, &resp) {
		t.Error("prefetch served twice without a refill")
	}

	// Mismatched offset misses.
	p.fill(h, 0, 4)
	if p.serve(&wire.Request{Op: wire.OpRead, Off: 2, N: 4}, &resp) {
		t.Error("prefetch served a mismatched offset")
	}

	// Short block at EOF serves with StatusEOF.
	p.fill(h, 8, 4)
	if !p.serve(&wire.Request{Op: wire.OpRead, Off: 8, N: 4}, &resp) {
		t.Fatal("prefetch did not serve the EOF block")
	}
	if resp.Status != wire.StatusEOF || string(resp.Data) != "89" {
		t.Errorf("eof serve = %+v", resp)
	}

	// Invalidate discards.
	p.fill(h, 0, 4)
	p.invalidate()
	if p.serve(&wire.Request{Op: wire.OpRead, Off: 0, N: 4}, &resp) {
		t.Error("prefetch served after invalidate")
	}
}
