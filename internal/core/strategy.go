// Package core implements the active-file engine: the binding between an
// application-visible file handle and the sentinel serving it, across the
// paper's four implementation strategies (§4). Opening an active file
// instantiates a sentinel (subprocess, goroutine, or direct dispatch),
// wires the data and control channels, and returns a Handle whose operations
// are indistinguishable from those on a passive file.
package core

import (
	"fmt"
	"strings"
)

// Strategy selects how the sentinel is instantiated and reached, trading
// run-time overhead against capability exactly as §4 describes.
type Strategy int

// The four implementation strategies.
const (
	// StrategyProcess runs the sentinel as a separate process connected by
	// two data pipes only (§4.1). Operations without a pipe analogue (seek,
	// size, truncate, positioned reads) are unsupported and "simply dropped
	// with an appropriate return code".
	StrategyProcess Strategy = iota + 1
	// StrategyProcCtl adds a control channel carrying every file operation
	// as a command with arguments (§4.2); the full file API works, at the
	// cost of two protection-domain crossings per operation.
	StrategyProcCtl
	// StrategyThread folds the sentinel into the application as a goroutine
	// communicating through a synchronous rendezvous (§4.3, DLL-with-thread):
	// no process switch, one user-level copy.
	StrategyThread
	// StrategyDirect dispatches file operations as plain function calls into
	// the sentinel program (§4.4, DLL-only): no switch at all.
	StrategyDirect
)

var strategyNames = map[Strategy]string{
	StrategyProcess: "process",
	StrategyProcCtl: "procctl",
	StrategyThread:  "thread",
	StrategyDirect:  "direct",
}

// String returns the manifest spelling of the strategy.
func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Valid reports whether s is one of the four strategies.
func (s Strategy) Valid() bool {
	_, ok := strategyNames[s]
	return ok
}

// ParseStrategy maps a manifest strategy string to a Strategy. The empty
// string selects StrategyThread, the paper's recommended middle ground
// between efficiency and programming convenience.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(s) {
	case "":
		return StrategyThread, nil
	case "process":
		return StrategyProcess, nil
	case "procctl", "process-plus-control", "process+control":
		return StrategyProcCtl, nil
	case "thread", "dll-with-thread":
		return StrategyThread, nil
	case "direct", "dll", "dll-only":
		return StrategyDirect, nil
	default:
		return 0, fmt.Errorf("core: unknown strategy %q", s)
	}
}

// SupportsPositioning reports whether the strategy can carry positioned
// operations (seek, size, truncate, locks). Only the plain process strategy
// cannot: it has no channel for control information (§4.1).
func (s Strategy) SupportsPositioning() bool {
	return s != StrategyProcess
}
