package core

import (
	"errors"
	"io"
	"testing"
)

// faultyWriteHandler is an in-memory handler whose WriteAt fails while
// tripped — the backing store going away mid-session.
type faultyWriteHandler struct {
	data     []byte
	wErr     error // returned by WriteAt while non-nil
	failNext error // returned by the next WriteAt only (one-shot)
	wrote    int   // successful WriteAt calls
	attempt  int   // total WriteAt calls
}

func (h *faultyWriteHandler) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(h.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *faultyWriteHandler) WriteAt(p []byte, off int64) (int, error) {
	h.attempt++
	if h.failNext != nil {
		err := h.failNext
		h.failNext = nil
		return 0, err
	}
	if h.wErr != nil {
		return 0, h.wErr
	}
	h.wrote++
	if end := off + int64(len(p)); end > int64(len(h.data)) {
		grown := make([]byte, end)
		copy(grown, h.data)
		h.data = grown
	}
	copy(h.data[off:], p)
	return len(p), nil
}

func (h *faultyWriteHandler) Size() (int64, error) { return int64(len(h.data)), nil }
func (h *faultyWriteHandler) Truncate(n int64) error {
	h.data = h.data[:n]
	return nil
}
func (h *faultyWriteHandler) Sync() error  { return nil }
func (h *faultyWriteHandler) Close() error { return nil }

// TestWriteBehindBypassSurfacesFlushFailure is the regression for the
// large-write bypass dropping the preceding flush result: when the buffered
// run fails to flush, the synchronous pass-through write must report the
// broken barrier instead of succeeding on top of a lost run.
func TestWriteBehindBypassSurfacesFlushFailure(t *testing.T) {
	boom := errors.New("backing store detached")
	h := &faultyWriteHandler{}
	d := newDispatcher(h)
	d.enableWriteBehind()

	// A small write parks in the coalescing buffer, reporting success.
	if n, err := d.writeAt([]byte("buffered run"), 0); n != 12 || err != nil {
		t.Fatalf("buffered write = (%d, %v)", n, err)
	}

	// The store breaks ONLY for the flush (one-shot); the bypass write
	// itself would succeed — which is exactly how the pre-fix code lost
	// the barrier: it reported the big write's success over the dropped run.
	h.failNext = boom
	big := make([]byte, writeBehindMax)
	n, err := d.writeAt(big, 4096)
	if !errors.Is(err, boom) {
		t.Fatalf("bypass write after failed flush = (%d, %v), want flush error %v", n, err, boom)
	}
	if h.wrote != 0 {
		t.Errorf("bypass write landed despite the lost run (%d successful writes)", h.wrote)
	}

	// The deferred-barrier semantics hold too: sync still reports the loss.
	if err := d.sync(); !errors.Is(err, boom) {
		t.Errorf("sync after failed flush = %v, want %v", err, boom)
	}
	// And the error is consumed: the next barrier is clean.
	if err := d.sync(); err != nil {
		t.Errorf("second sync = %v, want nil", err)
	}
}

// TestWriteBehindDeferredErrorStillSettles pins the unchanged path: buffered
// writes whose flush fails at the barrier report it at sync, once.
func TestWriteBehindDeferredErrorStillSettles(t *testing.T) {
	boom := errors.New("flush refused")
	h := &faultyWriteHandler{}
	d := newDispatcher(h)
	d.enableWriteBehind()

	if _, err := d.writeAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	h.wErr = boom
	if err := d.sync(); !errors.Is(err, boom) {
		t.Errorf("sync = %v, want %v", err, boom)
	}
	h.wErr = nil
	if err := d.sync(); err != nil {
		t.Errorf("sync after settle = %v, want nil", err)
	}
}
