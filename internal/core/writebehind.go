package core

import (
	"io"
	"sync"
)

// writeBehindMax is the coalescing threshold: the buffer flushes once it
// holds this much, and any single write at least this large bypasses the
// buffer entirely.
const writeBehindMax = 64 * 1024

// writeBehind is the dispatcher's opt-in write coalescer. Adjacent small
// writes — the sequential append pattern Figure 6's write sweep produces —
// accumulate in one buffer and reach the handler as a single WriteAt,
// turning N handler round trips into one. Semantics match the procctl write
// contract the paper describes ("writes are issued without waiting for their
// completion"): buffered writes succeed immediately, and any backing failure
// is deferred to the next sync, close, or barrier, where settle surfaces it.
//
// Read-your-writes holds because every dispatcher read path flushes the
// buffer first when the ranges overlap, and size/truncate/control flush
// unconditionally. A nil *writeBehind disables coalescing; every method is a
// safe no-op.
//
// Lock order: wb.mu is always taken before the dispatcher's handler lock
// (flushLocked calls handlerWriteAt), never the reverse.
type writeBehind struct {
	d *dispatcher

	mu  sync.Mutex
	off int64  // file offset of buf[0]
	buf []byte // pending contiguous run
	err error  // first deferred flush error, cleared by settle
}

// write buffers p at off, flushing as needed to keep the buffer one
// contiguous run. Buffered writes report success immediately; errors from
// the eventual backing write are deferred to settle. Writes at or above the
// coalescing threshold flush the run and go straight to the handler,
// reporting their result synchronously.
func (w *writeBehind) write(p []byte, off int64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(p) >= writeBehindMax {
		if ferr := w.flushLocked(); ferr != nil {
			// The preceding buffered run was lost. This pass-through write
			// reports synchronously, so it must carry the broken barrier to
			// the caller NOW — succeeding here would let the bypass write
			// land after a silently dropped run. (flushLocked also recorded
			// the error for settle, so the sync/close barrier still fails.)
			return 0, ferr
		}
		return w.d.handlerWriteAt(p, off)
	}
	if len(w.buf) > 0 && off != w.off+int64(len(w.buf)) {
		w.flushLocked()
	}
	if len(w.buf) == 0 {
		w.off = off
	}
	w.buf = append(w.buf, p...)
	if len(w.buf) >= writeBehindMax {
		w.flushLocked()
	}
	return len(p), nil
}

// flushLocked ships the pending run to the handler, recording the first
// failure for settle. Callers hold w.mu.
func (w *writeBehind) flushLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	n, err := w.d.handlerWriteAt(w.buf, w.off)
	if err == nil && n < len(w.buf) {
		err = io.ErrShortWrite
	}
	w.buf = w.buf[:0]
	if err != nil && w.err == nil {
		w.err = err
	}
	return err
}

// flushOverlap flushes the pending run only when it intersects [off, off+n)
// — the read-your-writes hook, cheap for reads that don't touch buffered
// data.
func (w *writeBehind) flushOverlap(off int64, n int) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if len(w.buf) > 0 && off < w.off+int64(len(w.buf)) && off+int64(n) > w.off {
		w.flushLocked()
	}
	w.mu.Unlock()
}

// flush ships any pending run, keeping deferred errors for settle.
func (w *writeBehind) flush() {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.flushLocked()
	w.mu.Unlock()
}

// settle flushes and returns-and-clears the deferred error — the sync/close
// barrier, where "the completion status of the writes" is finally reported.
func (w *writeBehind) settle() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushLocked()
	err := w.err
	w.err = nil
	return err
}
