package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/shm"
	"repro/internal/vfs"
)

// requireShm skips on platforms where the ring carrier compiles out.
func requireShm(t *testing.T) {
	t.Helper()
	if !shm.Supported() {
		t.Skip("shm transport unsupported on this platform")
	}
}

// TestShmTransportEndToEnd drives a real sentinel subprocess over the ring
// carrier: the session must actually get a segment, and reads, writes,
// size, sync, and close must behave exactly like the pipe path.
func TestShmTransportEndToEnd(t *testing.T) {
	requireShm(t)
	tr := newTestProcCtl(t, map[string]string{"transport": "shm"})
	if tr.seg == nil {
		t.Fatal("transport=shm session came up without a segment")
	}

	msg := []byte("ring-carried payload, long enough to be uninlined sometimes")
	if n, err := tr.writeAt(msg, 0); err != nil || n != len(msg) {
		t.Fatalf("writeAt = %d, %v", n, err)
	}
	if err := tr.sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	got := make([]byte, len(msg))
	if n, err := tr.readAt(got, 0); err != nil || n != len(msg) {
		t.Fatalf("readAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}
	if size, err := tr.size(); err != nil || size != int64(len(msg)) {
		t.Fatalf("size = %d, %v", size, err)
	}
	if err := tr.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestShmTransportPipelined hammers one shm session from many goroutines so
// exchanges overlap on the rings — the mux pipeline must stay correlated.
func TestShmTransportPipelined(t *testing.T) {
	requireShm(t)
	tr := newTestProcCtl(t, map[string]string{"transport": "shm", "readahead": "false"})

	content := make([]byte, 8192)
	for i := range content {
		content[i] = byte(i)
	}
	if _, err := tr.writeAt(content, 0); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	if err := tr.sync(); err != nil {
		t.Fatalf("seed sync: %v", err)
	}

	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			buf := make([]byte, 64)
			for i := 0; i < 200; i++ {
				off := int64(((w * 131) + i*64) % (len(content) - 64))
				n, err := tr.readAt(buf, off)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf[:n], content[off:off+int64(n)]) {
					errs <- errors.New("pipelined read returned misattributed bytes")
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestShmSentinelDeathPoisonsAndUnmaps is the chaos criterion over the ring
// carrier: SIGKILL mid-pipeline must fail every exchange with
// ErrSentinelDied (no waiter may block on a ring no one will ever ring),
// close the segment, and leak no goroutines.
func TestShmSentinelDeathPoisonsAndUnmaps(t *testing.T) {
	requireShm(t)
	faultinject.LeakCheck(t)
	tr := newTestProcCtl(t, map[string]string{"transport": "shm", "readahead": "false"})

	if _, err := tr.size(); err != nil {
		t.Fatalf("healthy size: %v", err)
	}
	if err := tr.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill sentinel: %v", err)
	}

	const callers = 4
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			_, err := tr.size()
			errs <- err
		}()
	}
	deadline := time.After(5 * time.Second)
	for i := 0; i < callers; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Error("exchange succeeded against a dead sentinel")
			}
		case <-deadline:
			t.Fatal("exchange blocked on the rings after sentinel death")
		}
	}

	waitDeadline := time.Now().Add(5 * time.Second)
	for {
		_, err := tr.size()
		if errors.Is(err, ErrSentinelDied) {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("post-death error never became ErrSentinelDied: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The death hook must have closed the segment: its rings reject traffic.
	ringDeadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := tr.seg.Cmd().Write([]byte{0}); errors.Is(err, shm.ErrClosed) {
			break
		}
		if time.Now().After(ringDeadline) {
			t.Fatal("segment still open after sentinel death")
		}
		time.Sleep(10 * time.Millisecond)
	}

	done := make(chan error, 1)
	go func() { done <- tr.close() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("close hung after sentinel death")
	}
}

// TestShmWarmPoolAdoption checks that warm-pool sentinels carry their
// segment through adoption: the OpOpen rebind and the session both ride the
// rings, and retiring the pool releases the idle children.
func TestShmWarmPoolAdoption(t *testing.T) {
	requireShm(t)
	t.Cleanup(DrainSentinelPool)
	params := map[string]string{"transport": "shm", "pool": "2"}

	// First open is cold (pool empty) and primes the pool at close.
	tr := newTestProcCtl(t, params)
	if tr.seg == nil {
		t.Fatal("cold pooled open came up without a segment")
	}
	if _, err := tr.writeAt([]byte("warm me"), 0); err != nil {
		t.Fatalf("writeAt: %v", err)
	}
	if err := tr.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	path := tr.poolPath
	poolDeadline := time.Now().Add(10 * time.Second)
	for IdleSentinels(path) == 0 {
		if time.Now().After(poolDeadline) {
			t.Fatal("pool never replenished after close")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Second open must adopt a warm shm child and serve over its rings.
	m, err := vfs.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := newProcCtlTransport(path, m)
	if err != nil {
		t.Fatalf("warm open: %v", err)
	}
	if tr2.seg == nil {
		t.Fatal("warm adoption lost the segment")
	}
	if _, err := tr2.size(); err != nil {
		t.Fatalf("size over adopted rings: %v", err)
	}
	if err := tr2.close(); err != nil {
		t.Fatalf("close adopted: %v", err)
	}
}

// TestTransportParam pins carrier-param validation and the pipe default.
func TestTransportParam(t *testing.T) {
	for v, want := range map[string]string{"": "pipe", "pipe": "pipe", "shm": "shm"} {
		got, err := transportParam(vfs.Manifest{Params: map[string]string{"transport": v}})
		if err != nil || got != want {
			t.Errorf("transport %q = (%q, %v), want %q", v, got, err, want)
		}
	}
	if _, err := transportParam(vfs.Manifest{Params: map[string]string{"transport": "carrier-pigeon"}}); err == nil {
		t.Error("bogus transport param accepted")
	}
}

// TestPipeTransportHasNoSegment: the default carrier must not allocate shm.
func TestPipeTransportHasNoSegment(t *testing.T) {
	tr := newTestProcCtl(t, nil)
	if tr.seg != nil {
		t.Fatal("pipe-carrier session allocated a segment")
	}
	if _, err := tr.size(); err != nil {
		t.Fatalf("size: %v", err)
	}
	if err := tr.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
