package core_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/program"
	"repro/internal/remote"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// TestMain registers the built-in programs and, when this binary was
// re-executed as a sentinel subprocess, becomes that sentinel instead of
// running tests.
func TestMain(m *testing.M) {
	program.RegisterAll()
	core.RunChildIfRequested()
	os.Exit(m.Run())
}

// createAF writes an active-file manifest (plus data part) into a temp dir.
func createAF(t *testing.T, m vfs.Manifest) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "file.af")
	if err := vfs.Create(path, m); err != nil {
		t.Fatalf("vfs.Create: %v", err)
	}
	return path
}

func seedData(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(vfs.DataPath(path), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func readData(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(vfs.DataPath(path))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestParseStrategy(t *testing.T) {
	tests := []struct {
		give    string
		want    core.Strategy
		wantErr bool
	}{
		{give: "", want: core.StrategyThread},
		{give: "process", want: core.StrategyProcess},
		{give: "procctl", want: core.StrategyProcCtl},
		{give: "process-plus-control", want: core.StrategyProcCtl},
		{give: "thread", want: core.StrategyThread},
		{give: "dll-with-thread", want: core.StrategyThread},
		{give: "direct", want: core.StrategyDirect},
		{give: "dll-only", want: core.StrategyDirect},
		{give: "DIRECT", want: core.StrategyDirect},
		{give: "kernel", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := core.ParseStrategy(tt.give)
			if tt.wantErr {
				if err == nil {
					t.Errorf("ParseStrategy(%q) succeeded", tt.give)
				}
				return
			}
			if err != nil || got != tt.want {
				t.Errorf("ParseStrategy(%q) = (%v, %v), want %v", tt.give, got, err, tt.want)
			}
		})
	}
}

func TestStrategyProperties(t *testing.T) {
	tests := []struct {
		give     core.Strategy
		wantStr  string
		wantsPos bool
	}{
		{core.StrategyProcess, "process", false},
		{core.StrategyProcCtl, "procctl", true},
		{core.StrategyThread, "thread", true},
		{core.StrategyDirect, "direct", true},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.wantStr {
			t.Errorf("String() = %q, want %q", got, tt.wantStr)
		}
		if got := tt.give.SupportsPositioning(); got != tt.wantsPos {
			t.Errorf("%v.SupportsPositioning() = %v, want %v", tt.give, got, tt.wantsPos)
		}
		if !tt.give.Valid() {
			t.Errorf("%v not Valid", tt.give)
		}
	}
	if core.Strategy(0).Valid() {
		t.Error("Strategy(0) reported Valid")
	}
}

// positionedStrategies are the strategies supporting the full file API.
var positionedStrategies = []core.Strategy{
	core.StrategyProcCtl,
	core.StrategyThread,
	core.StrategyDirect,
}

func TestPositionedStrategiesFullFileAPI(t *testing.T) {
	for _, strategy := range positionedStrategies {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			path := createAF(t, vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "passthrough"},
				Cache:   "disk",
			})
			h, err := core.Open(path, core.Options{Strategy: strategy})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer h.Close()

			if h.Strategy() != strategy {
				t.Errorf("Strategy() = %v", h.Strategy())
			}

			// Sequential write advances the offset.
			if n, err := h.Write([]byte("hello, ")); n != 7 || err != nil {
				t.Fatalf("Write = (%d, %v)", n, err)
			}
			if n, err := h.Write([]byte("world")); n != 5 || err != nil {
				t.Fatalf("Write = (%d, %v)", n, err)
			}
			// Seek home and stream it back.
			if pos, err := h.Seek(0, io.SeekStart); pos != 0 || err != nil {
				t.Fatalf("Seek = (%d, %v)", pos, err)
			}
			got := make([]byte, 12)
			if _, err := io.ReadFull(h, got); err != nil || string(got) != "hello, world" {
				t.Fatalf("ReadFull = (%q, %v)", got, err)
			}
			// GetFileSize equivalent.
			if size, err := h.Size(); size != 12 || err != nil {
				t.Errorf("Size = (%d, %v), want 12", size, err)
			}
			// Positioned I/O does not disturb the offset.
			if _, err := h.WriteAt([]byte("WORLD"), 7); err != nil {
				t.Fatalf("WriteAt: %v", err)
			}
			buf := make([]byte, 5)
			if _, err := h.ReadAt(buf, 7); err != nil || string(buf) != "WORLD" {
				t.Fatalf("ReadAt = (%q, %v)", buf, err)
			}
			// Seek relative to end.
			if pos, err := h.Seek(-5, io.SeekEnd); pos != 7 || err != nil {
				t.Fatalf("SeekEnd = (%d, %v)", pos, err)
			}
			if _, err := io.ReadFull(h, buf); err != nil || string(buf) != "WORLD" {
				t.Fatalf("read after SeekEnd = (%q, %v)", buf, err)
			}
			// Truncate and verify.
			if err := h.Truncate(5); err != nil {
				t.Fatalf("Truncate: %v", err)
			}
			if size, err := h.Size(); size != 5 || err != nil {
				t.Errorf("Size after truncate = (%d, %v)", size, err)
			}
			if err := h.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			if err := h.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if got := readData(t, path); string(got) != "hello" {
				t.Errorf("data part = %q, want %q", got, "hello")
			}
		})
	}
}

func TestProcessStrategyStreamsExistingContent(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "disk",
	})
	seedData(t, path, []byte("streamed through a real subprocess"))

	h, err := core.Open(path, core.Options{Strategy: core.StrategyProcess})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer h.Close()

	got, err := io.ReadAll(h)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "streamed through a real subprocess" {
		t.Errorf("stream = %q", got)
	}
}

func TestProcessStrategyWriteStream(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "disk",
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyProcess})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := h.Write([]byte("written via pipes")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := readData(t, path); string(got) != "written via pipes" {
		t.Errorf("data part = %q", got)
	}
}

func TestProcessStrategyDropsControlOps(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "disk",
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyProcess})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer h.Close()

	if _, err := h.Seek(0, io.SeekStart); !errors.Is(err, wire.ErrUnsupported) {
		t.Errorf("Seek err = %v, want ErrUnsupported", err)
	}
	if _, err := h.Size(); !errors.Is(err, wire.ErrUnsupported) {
		t.Errorf("Size err = %v, want ErrUnsupported", err)
	}
	if _, err := h.ReadAt(make([]byte, 1), 0); !errors.Is(err, wire.ErrUnsupported) {
		t.Errorf("ReadAt err = %v, want ErrUnsupported", err)
	}
	if _, err := h.WriteAt([]byte("x"), 0); !errors.Is(err, wire.ErrUnsupported) {
		t.Errorf("WriteAt err = %v, want ErrUnsupported", err)
	}
	if err := h.Truncate(0); !errors.Is(err, wire.ErrUnsupported) {
		t.Errorf("Truncate err = %v, want ErrUnsupported", err)
	}
	if err := h.Sync(); !errors.Is(err, wire.ErrUnsupported) {
		t.Errorf("Sync err = %v, want ErrUnsupported", err)
	}
}

func TestHandleClosedSemantics(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "memory",
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := h.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := h.Read(make([]byte, 1)); !errors.Is(err, wire.ErrClosed) {
		t.Errorf("Read after close err = %v, want ErrClosed", err)
	}
	if _, err := h.Write([]byte("x")); !errors.Is(err, wire.ErrClosed) {
		t.Errorf("Write after close err = %v, want ErrClosed", err)
	}
}

func TestOpenErrors(t *testing.T) {
	t.Run("missing manifest", func(t *testing.T) {
		if _, err := core.Open(filepath.Join(t.TempDir(), "none.af"), core.Options{}); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("err = %v, want os.ErrNotExist", err)
		}
	})
	t.Run("unknown program", func(t *testing.T) {
		path := createAF(t, vfs.Manifest{Program: vfs.ProgramSpec{Name: "no-such-program"}})
		if _, err := core.Open(path, core.Options{Strategy: core.StrategyDirect}); !errors.Is(err, core.ErrUnknownProgram) {
			t.Errorf("err = %v, want ErrUnknownProgram", err)
		}
	})
	t.Run("invalid strategy override", func(t *testing.T) {
		path := createAF(t, vfs.Manifest{Program: vfs.ProgramSpec{Name: "passthrough"}})
		if _, err := core.Open(path, core.Options{Strategy: core.Strategy(99)}); err == nil {
			t.Error("Open with bogus strategy succeeded")
		}
	})
}

func TestManifestStrategyDefaultUsed(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program:  vfs.ProgramSpec{Name: "passthrough"},
		Strategy: "direct",
		Cache:    "memory",
	})
	h, err := core.Open(path, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Strategy() != core.StrategyDirect {
		t.Errorf("Strategy = %v, want direct (from manifest)", h.Strategy())
	}
}

func TestRemoteSourcePassthrough(t *testing.T) {
	srv := remote.NewFileServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Put("obj", []byte("remote bytes"))

	for _, cacheMode := range []string{"none", "disk", "memory"} {
		cacheMode := cacheMode
		t.Run(cacheMode, func(t *testing.T) {
			path := createAF(t, vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "passthrough"},
				Cache:   cacheMode,
				Source:  vfs.SourceSpec{Kind: "tcp", Addr: addr, Path: "obj"},
			})
			h, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			got := make([]byte, 12)
			if _, err := io.ReadFull(h, got); err != nil || string(got) != "remote bytes" {
				t.Fatalf("read = (%q, %v)", got, err)
			}
			// Write back and flush; the remote object must see it.
			if _, err := h.WriteAt([]byte("REMOTE"), 0); err != nil {
				t.Fatalf("WriteAt: %v", err)
			}
			if err := h.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			obj, _ := srv.Get("obj")
			if string(obj) != "REMOTE bytes" {
				t.Errorf("remote object = %q", obj)
			}
			srv.Put("obj", []byte("remote bytes")) // reset for the next mode
		})
	}
}

func TestDiskCacheDecouplesFromRemote(t *testing.T) {
	srv := remote.NewFileServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Put("obj", []byte("version-1"))

	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "disk",
		Source:  vfs.SourceSpec{Kind: "tcp", Addr: addr, Path: "obj"},
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Remote changes after open; the session keeps serving its cached copy
	// (Figure 5 path 2: the sentinel interacts with its local file).
	srv.Put("obj", []byte("version-2"))
	got := make([]byte, 9)
	if _, err := io.ReadFull(h, got); err != nil || string(got) != "version-1" {
		t.Errorf("read = (%q, %v), want cached version-1", got, err)
	}
}

func TestFilterProgramUppercasesStorage(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "filter:upper"},
		Cache:   "disk",
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("Mixed Case 42")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 13)
	if _, err := h.ReadAt(got, 0); err != nil || string(got) != "mixed case 42" {
		t.Errorf("application view = (%q, %v)", got, err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if stored := readData(t, path); string(stored) != "MIXED CASE 42" {
		t.Errorf("stored form = %q, want uppercase", stored)
	}
}

func TestFilterProgramParamDriven(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "filter"},
		Cache:   "disk",
		Params:  map[string]string{"filter": "xor:k3y"},
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	plaintext := []byte("confidential payload")
	if _, err := h.Write(plaintext); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, len(plaintext))
	if _, err := h.ReadAt(back, 0); err != nil || !bytes.Equal(back, plaintext) {
		t.Errorf("decrypted view = (%q, %v)", back, err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	stored := readData(t, path)
	if bytes.Equal(stored, plaintext) {
		t.Error("stored form is plaintext; cipher filter did not run")
	}
}

func TestCompressProgramRoundTrip(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "compress"},
	})
	content := bytes.Repeat([]byte("log line with heavy repetition\n"), 200)

	h, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write(content); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	stored := readData(t, path)
	if !bytes.HasPrefix(stored, []byte("AFLZ")) {
		t.Fatalf("stored form lacks codec magic: %q...", stored[:8])
	}
	if len(stored) >= len(content) {
		t.Errorf("stored %d bytes for %d content bytes; expected compression", len(stored), len(content))
	}

	// Reopen: the application sees the plain content, unaware of compression.
	h2, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	got, err := io.ReadAll(h2)
	if err != nil || !bytes.Equal(got, content) {
		t.Errorf("reopened view: %d bytes, err %v; want %d bytes", len(got), err, len(content))
	}
}

func TestGenerateProgramDeterministicStream(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "generate"},
		NoData:  true,
		Params:  map[string]string{"size": "4096", "seed": "7"},
	})
	read := func(strategy core.Strategy) []byte {
		h, err := core.Open(path, core.Options{Strategy: strategy})
		if err != nil {
			t.Fatalf("Open(%v): %v", strategy, err)
		}
		defer h.Close()
		data, err := io.ReadAll(h)
		if err != nil {
			t.Fatalf("ReadAll(%v): %v", strategy, err)
		}
		return data
	}
	first := read(core.StrategyDirect)
	second := read(core.StrategyThread)
	if len(first) != 4096 {
		t.Fatalf("generated %d bytes, want 4096", len(first))
	}
	if !bytes.Equal(first, second) {
		t.Error("generated stream differs across opens")
	}
	// And through a real subprocess, the same bytes arrive.
	third := read(core.StrategyProcess)
	if !bytes.Equal(first, third) {
		t.Error("subprocess stream differs from in-process stream")
	}
}

func TestProcCtlDeferredWriteErrorSurfacesOnSync(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "generate"}, // rejects writes
		NoData:  true,
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyProcCtl})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// The write itself streams without acknowledgement...
	if _, err := h.Write([]byte("doomed")); err != nil {
		t.Fatalf("Write returned synchronously: %v", err)
	}
	// ...and the failure arrives at the next synchronous barrier.
	if err := h.Sync(); err == nil {
		t.Error("Sync returned nil, want the deferred write failure")
	}
}

func TestMultipleSimultaneousOpens(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "disk",
	})
	seedData(t, path, []byte("shared"))

	// "If multiple user processes open the same active file, multiple
	// sentinels are created" — each handle gets an independent session.
	h1, err := core.Open(path, core.Options{Strategy: core.StrategyThread})
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Close()
	h2, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()

	buf1 := make([]byte, 6)
	buf2 := make([]byte, 6)
	if _, err := h1.ReadAt(buf1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.ReadAt(buf2, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf1) != "shared" || string(buf2) != "shared" {
		t.Errorf("views = %q, %q", buf1, buf2)
	}
}

func TestHandleStats(t *testing.T) {
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "memory",
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	if got := h.Stats(); got != (core.Stats{}) {
		t.Errorf("fresh stats = %+v", got)
	}
	h.Write([]byte("12345"))        // 5 bytes written
	h.ReadAt(make([]byte, 3), 0)    // 3 bytes read
	h.ReadAt(make([]byte, 10), 100) // error read (EOF)
	got := h.Stats()
	if got.Writes != 1 || got.BytesWritten != 5 {
		t.Errorf("writes = %d/%d bytes", got.Writes, got.BytesWritten)
	}
	if got.Reads != 2 || got.BytesRead != 3 {
		t.Errorf("reads = %d/%d bytes", got.Reads, got.BytesRead)
	}
	if got.Errors != 1 {
		t.Errorf("errors = %d, want 1 (the EOF read)", got.Errors)
	}
}

func TestExternalSentinelExecutable(t *testing.T) {
	// An active file whose manifest names an explicit sentinel executable
	// runs that image instead of re-executing the opener — the paper's
	// "the active part is an executable" arrangement. The test binary
	// doubles as the external image (its TestMain handles child mode).
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough", Exec: self},
		Cache:   "disk",
	})
	seedData(t, path, []byte("served by an external sentinel image"))

	for _, strategy := range []core.Strategy{core.StrategyProcess, core.StrategyProcCtl} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			h, err := core.Open(path, core.Options{Strategy: strategy})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer h.Close()
			got, err := io.ReadAll(h)
			if err != nil {
				t.Fatalf("ReadAll: %v", err)
			}
			if string(got) != "served by an external sentinel image" {
				t.Errorf("content = %q", got)
			}
		})
	}
}

func TestRegistryIsolation(t *testing.T) {
	reg := core.NewRegistry()
	reg.Register(program.Passthrough{})
	if _, err := reg.Lookup("passthrough"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Lookup("filter:upper"); !errors.Is(err, core.ErrUnknownProgram) {
		t.Errorf("Lookup in private registry err = %v, want ErrUnknownProgram", err)
	}
	names := reg.Names()
	if len(names) != 1 || names[0] != "passthrough" {
		t.Errorf("Names = %v", names)
	}

	// A private registry can back Open, independent of the default.
	path := createAF(t, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "memory",
	})
	h, err := core.Open(path, core.Options{Strategy: core.StrategyDirect, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
}

func TestDefaultRegistryContents(t *testing.T) {
	names := core.ProgramNames()
	for _, want := range []string{"passthrough", "filter", "filter:upper", "compress", "generate"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("default registry missing %q (have %v)", want, names)
		}
	}
	if !strings.Contains(strings.Join(names, ","), "filter:rot13") {
		t.Errorf("default registry missing filter:rot13: %v", names)
	}
}
