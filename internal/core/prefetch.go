package core

import (
	"errors"
	"io"
	"sync"

	"repro/internal/wire"
)

// Read-ahead window tuning.
const (
	// prefetchMaxBlocks caps the window at this many request-sized blocks,
	// reached after four confirmed sequential reads (2, 4, 8, 16).
	prefetchMaxBlocks = 16
	// prefetchMaxBytes bounds the window regardless of block size, keeping
	// every fill within one pooled payload buffer.
	prefetchMaxBytes = 64 * 1024
)

// prefetcher is the adaptive sliding-window read-ahead shared by the procctl
// sentinel (serving wire requests) and the procctl/thread client transports
// (serving ReadAt calls). It detects sequential access, scales its window
// from two request-sized blocks up to prefetchMaxBlocks on confirmed hits,
// serves reads that land anywhere inside the window, and stops fetching the
// moment the access pattern goes random — a random read costs nothing beyond
// the window already fetched.
//
// A nil *prefetcher disables read-ahead: every method is a safe no-op, so
// call sites need no conditionals. The state is safe for concurrent use;
// reads are served by copying out of the window, never by handing the window
// buffer away, so an in-flight fill can never scribble over served data.
type prefetcher struct {
	// read pulls bytes from the layer below: the dispatcher for the
	// sentinel-side instance, the transport's wire round trip for the
	// client-side instances. It must be safe to call concurrently with
	// serve/readAt (both run unlocked reads).
	read func(p []byte, off int64) (int, error)
	// async runs fills on their own goroutine — the client-side mode, where
	// the fill round trip overlaps the application consuming the data it
	// just got. The sentinel fills synchronously on its serving worker.
	async bool

	mu      sync.Mutex
	gen     uint64 // bumped by invalidate; discards in-flight fills
	off     int64  // window start offset
	data    []byte // window contents
	eof     bool   // window ends at end of file
	valid   bool
	expect  int64 // offset the next sequential read would use
	streak  int   // consecutive sequential reads observed
	filling bool  // a fill is in flight; don't start another

	// The in-flight fill's coverage [fillBase, fillEnd) and completion
	// signal. A read that misses the window but lands inside the fill's
	// range waits for the fill instead of issuing its own round trip — on
	// a pipelined transport the fill is always one RTT behind the next
	// sequential read, and without the wait every read would pay its own
	// RPC plus the (wasted) fill.
	fillBase int64
	fillEnd  int64
	fillDone chan struct{}
}

// newPrefetcher returns a prefetcher pulling misses and fills through read.
func newPrefetcher(read func(p []byte, off int64) (int, error), async bool) *prefetcher {
	return &prefetcher{read: read, async: async}
}

// windowTarget returns how many bytes ahead of the next expected read the
// window should hold, given the streak and the current request size.
func windowTarget(streak, blockSize int) int {
	if streak <= 0 || blockSize <= 0 {
		return 0
	}
	// Start at two blocks so the very first fill already covers the read
	// after next, then double per confirmed sequential read. The shift must
	// be capped BEFORE it reaches the int width: a long streak would
	// otherwise overflow 1<<streak to zero and collapse the window.
	shift := streak
	if shift > 4 { // 1<<4 == prefetchMaxBlocks
		shift = 4
	}
	blocks := 1 << shift
	if blocks > prefetchMaxBlocks {
		blocks = prefetchMaxBlocks
	}
	target := blocks * blockSize
	if target > prefetchMaxBytes {
		target = prefetchMaxBytes
	}
	if target < blockSize {
		target = blockSize
	}
	return target
}

// serve answers a wire read request from the window — the sentinel-side hit
// path. It reports whether resp was filled; on a hit resp.Data is backed by
// a pooled buffer and the returned release must be called after resp ships.
// A read overlapping the window is served when the window covers it fully,
// or up to end of file when the window ends there (including the zero-byte
// read past EOF).
func (p *prefetcher) serve(req *wire.Request, resp *wire.Response) (func(), bool) {
	if p == nil {
		return nil, false
	}
	n := int(req.N)
	if n < 0 || n > wire.MaxPayload {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.valid && req.Off >= p.off {
			end := p.off + int64(len(p.data))
			avail := end - req.Off
			if avail > int64(n) {
				avail = int64(n)
			}
			switch {
			case avail < 0 && !p.eof, avail >= 0 && avail < int64(n) && !p.eof:
				// More file exists beyond the window; a partial answer
				// would turn one read into two. Fall through to waiting
				// for an in-flight fill or reading through whole.
			default:
				if avail < 0 {
					avail = 0 // read entirely past EOF
				}
				buf, release := wire.GetBuf(int(avail))
				if avail > 0 {
					copy(buf, p.data[req.Off-p.off:])
				}
				resp.Seq = req.Seq
				resp.Status = wire.StatusOK
				resp.N = avail
				resp.Data = buf
				// Only a SHORT read reports EOF, matching os.File.ReadAt
				// (and the dispatcher): a full read ending exactly at end
				// of file is a plain success.
				if avail < int64(n) {
					resp.Status = wire.StatusEOF
				}
				return release, true
			}
		}
		if !p.waitForFill(req.Off, int64(n)) {
			return nil, false
		}
	}
}

// waitForFill blocks until the in-flight fill covering [off, off+n) lands,
// reporting false immediately when no such fill exists. Called — and
// returning — with p.mu held.
func (p *prefetcher) waitForFill(off, n int64) bool {
	if !p.filling || off < p.fillBase || off+n > p.fillEnd {
		return false
	}
	done := p.fillDone
	p.mu.Unlock()
	<-done
	p.mu.Lock()
	return true
}

// readAt answers a client ReadAt from the window — the client-side hit path.
// It reports whether dst was filled; a miss leaves dst untouched and the
// caller reads through. On a short fill at end of file it returns io.EOF,
// matching os.File.ReadAt.
func (p *prefetcher) readAt(dst []byte, off int64) (int, error, bool) {
	if p == nil {
		return 0, nil, false
	}
	p.mu.Lock()
	for {
		if p.valid && off >= p.off {
			end := p.off + int64(len(p.data))
			avail := end - off
			if avail >= int64(len(dst)) || p.eof {
				n := 0
				if avail > 0 {
					n = copy(dst, p.data[off-p.off:])
				}
				eof := p.eof && off+int64(n) >= end
				p.mu.Unlock()
				p.afterRead(off, n, len(dst), eof)
				if n < len(dst) {
					return n, io.EOF, true
				}
				return n, nil, true
			}
		}
		if !p.waitForFill(off, int64(len(dst))) {
			p.mu.Unlock()
			return 0, nil, false
		}
	}
}

// afterRead records one completed read — wherever it was served from — and
// decides whether to extend the window. off/n are the read's position and
// actual length, blockSize the requested length (they differ at EOF), eof
// whether the read hit end of file. Unconsumed window content ahead of the
// next expected read is preserved; the fill fetches only what is missing.
func (p *prefetcher) afterRead(off int64, n, blockSize int, eof bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	// Sequential detection tolerates out-of-order arrivals: concurrent
	// clients striding disjoint blocks over one handle form a single
	// globally-sequential stream whose reads land within a few blocks of the
	// frontier, not exactly on it. Anything inside one maximum window of
	// expect keeps the streak (and never drags the frontier backward); a
	// jump beyond that is random access — reset and relocate.
	slack := int64(prefetchMaxBlocks * blockSize)
	if slack > prefetchMaxBytes {
		slack = prefetchMaxBytes
	}
	delta := off - p.expect
	switch {
	case n > 0 && delta >= -slack && delta <= slack:
		p.streak++
		if e := off + int64(n); e > p.expect {
			p.expect = e
		}
	case delta != 0:
		p.streak = 0
		p.expect = off + int64(n)
	}
	target := windowTarget(p.streak, blockSize)
	if target == 0 || eof || p.filling {
		p.mu.Unlock()
		return
	}
	// How much of the wanted range [expect, expect+target) the window
	// already holds, and whether it is known to end at EOF.
	keep := 0
	if p.valid && p.expect >= p.off && p.expect <= p.off+int64(len(p.data)) {
		keep = int(p.off + int64(len(p.data)) - p.expect)
		if p.eof {
			p.mu.Unlock()
			return // window already reaches end of file
		}
	}
	if 2*keep >= target {
		// Refill only once the runway has dropped below half the target:
		// without this hysteresis a full window would trigger a sliver-sized
		// refill after every read, paying one round trip per operation for a
		// handful of new bytes — the exact cost read-ahead exists to remove.
		p.mu.Unlock()
		return
	}
	buf := make([]byte, target)
	if keep > 0 {
		copy(buf, p.data[p.expect-p.off:])
	}
	base := p.expect
	gen := p.gen
	p.filling = true
	p.fillBase = base
	p.fillEnd = base + int64(target)
	p.fillDone = make(chan struct{})
	done := p.fillDone
	p.mu.Unlock()

	fill := func() {
		rn, err := p.read(buf[keep:], base+int64(keep))
		p.mu.Lock()
		p.filling = false
		if p.gen == gen && (err == nil || errors.Is(err, io.EOF)) {
			p.off = base
			p.data = buf[:keep+rn]
			p.eof = errors.Is(err, io.EOF)
			p.valid = true
		}
		close(done) // wake reads parked on this fill's range
		p.mu.Unlock()
	}
	if p.async {
		go fill()
	} else {
		fill()
	}
}

// invalidate discards the window and any in-flight fill (after writes or
// truncation). The sequential-detection state survives, so a read-modify-
// write sweep keeps its window scaling.
func (p *prefetcher) invalidate() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.gen++
	p.valid = false
	p.eof = false
	p.data = nil
	p.mu.Unlock()
}
