package core

import (
	"errors"
	"io"

	"repro/internal/wire"
)

// prefetchState is the procctl sentinel's one-block read-ahead buffer. A nil
// *prefetchState disables read-ahead: every method is a safe no-op, so the
// serving loop needs no conditionals.
type prefetchState struct {
	off   int64
	data  []byte
	eof   bool
	valid bool
}

// serve answers req from the prefetched block when it covers the request
// exactly (the sequential pattern read-ahead targets). It reports whether
// resp was filled.
func (p *prefetchState) serve(req *wire.Request, resp *wire.Response) bool {
	if p == nil || !p.valid || req.Off != p.off || int(req.N) < len(p.data) {
		return false
	}
	// Either a full block, or the short block at EOF.
	if int(req.N) > len(p.data) && !p.eof {
		return false
	}
	resp.Seq = req.Seq
	resp.Status = wire.StatusOK
	resp.N = int64(len(p.data))
	resp.Data = p.data
	if p.eof {
		resp.Status = wire.StatusEOF
	}
	p.valid = false // single use; fill replenishes it
	return true
}

// fill prefetches n bytes at off for the anticipated next read.
func (p *prefetchState) fill(handler Handler, off int64, n int) {
	if p == nil || n <= 0 || n > wire.MaxPayload {
		return
	}
	if cap(p.data) < n {
		p.data = make([]byte, n)
	}
	rn, err := handler.ReadAt(p.data[:n], off)
	if err != nil && !errors.Is(err, io.EOF) {
		p.valid = false
		return
	}
	p.off = off
	p.data = p.data[:rn]
	p.eof = errors.Is(err, io.EOF)
	p.valid = true
}

// invalidate discards the prefetched block (after writes or truncation).
func (p *prefetchState) invalidate() {
	if p != nil {
		p.valid = false
	}
}
