package core

import (
	"errors"
	"io"
	"sync"

	"repro/internal/wire"
)

// prefetchState is the procctl sentinel's one-block read-ahead buffer. A nil
// *prefetchState disables read-ahead: every method is a safe no-op, so the
// serving loop needs no conditionals. The state is safe for concurrent use
// by the serving workers; serve transfers ownership of the prefetched block
// to the caller, so a concurrent fill can never scribble over a block that
// is being shipped.
type prefetchState struct {
	mu    sync.Mutex
	off   int64
	data  []byte
	eof   bool
	valid bool
}

// serve answers req from the prefetched block when it covers the request
// exactly (the sequential pattern read-ahead targets). It reports whether
// resp was filled; on a hit, resp.Data owns the block outright.
func (p *prefetchState) serve(req *wire.Request, resp *wire.Response) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.valid || req.Off != p.off || int(req.N) < len(p.data) {
		return false
	}
	// Either a full block, or the short block at EOF.
	if int(req.N) > len(p.data) && !p.eof {
		return false
	}
	resp.Seq = req.Seq
	resp.Status = wire.StatusOK
	resp.N = int64(len(p.data))
	resp.Data = p.data
	if p.eof {
		resp.Status = wire.StatusEOF
	}
	// Ownership moves to the response; the next fill allocates afresh.
	p.data = nil
	p.valid = false
	return true
}

// fill prefetches n bytes at off for the anticipated next read, reading
// through the dispatcher so it never races the handler's other callers.
func (p *prefetchState) fill(d *dispatcher, off int64, n int) {
	if p == nil || n <= 0 || n > wire.MaxPayload {
		return
	}
	buf := make([]byte, n)
	rn, err := d.readAt(buf, off)
	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil && !errors.Is(err, io.EOF) {
		p.valid = false
		return
	}
	p.off = off
	p.data = buf[:rn]
	p.eof = errors.Is(err, io.EOF)
	p.valid = true
}

// invalidate discards the prefetched block (after writes or truncation).
func (p *prefetchState) invalidate() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.data = nil
	p.valid = false
	p.mu.Unlock()
}
