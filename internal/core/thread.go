package core

import (
	"errors"

	"repro/internal/ipc"
	"repro/internal/wire"
)

// threadTransport implements the DLL-with-thread strategy (§4.3): the
// sentinel runs as a goroutine inside the application process and each file
// operation is a synchronous rendezvous with it — the analogue of the
// paper's shared-memory buffers with event signalling ("the application
// simply switches over to the sentinel thread ... without requiring costly
// interactions across process boundaries").
type threadTransport struct {
	rv   *ipc.Rendezvous[*wire.Request, wire.Response]
	seq  uint32
	done chan struct{} // closed when the sentinel goroutine exits
}

var _ transport = (*threadTransport)(nil)

// newThreadTransport starts the sentinel goroutine over handler and returns
// the connected transport. The goroutine exits when the transport closes.
func newThreadTransport(handler Handler) *threadTransport {
	t := &threadTransport{
		rv:   ipc.NewRendezvous[*wire.Request, wire.Response](),
		done: make(chan struct{}),
	}
	go t.sentinelMain(handler)
	return t
}

// sentinelMain is the SentinelThrdMain dispatch loop: block on the
// rendezvous for control messages, perform the operation, reply.
func (t *threadTransport) sentinelMain(handler Handler) {
	defer close(t.done)
	d := newDispatcher(handler)
	for {
		req, reply, err := t.rv.Next()
		if err != nil {
			// Transport closed without an explicit OpClose (application
			// abandoned the handle); release program resources.
			handler.Close()
			return
		}
		resp := d.dispatch(req)
		reply(resp)
		if req.Op == wire.OpClose {
			return
		}
	}
}

// call performs one synchronous exchange with the sentinel goroutine.
func (t *threadTransport) call(req *wire.Request) (wire.Response, error) {
	t.seq++
	req.Seq = t.seq
	resp, err := t.rv.Call(req)
	if err != nil {
		return wire.Response{}, wire.ErrClosed
	}
	return resp, nil
}

func (t *threadTransport) readAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > wire.MaxPayload {
			chunk = wire.MaxPayload
		}
		resp, err := t.call(&wire.Request{Op: wire.OpRead, Off: off + int64(total), N: int64(chunk)})
		if err != nil {
			return total, err
		}
		n := copy(p[total:], resp.Data)
		total += n
		if werr := wire.ToError(wire.OpRead, resp.Status, resp.Msg); werr != nil {
			return total, werr
		}
		if n == 0 {
			break
		}
	}
	return total, nil
}

func (t *threadTransport) writeAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > wire.MaxPayload {
			chunk = wire.MaxPayload
		}
		resp, err := t.call(&wire.Request{Op: wire.OpWrite, Off: off + int64(total), Data: p[total : total+chunk]})
		if err != nil {
			return total, err
		}
		total += int(resp.N)
		if werr := wire.ToError(wire.OpWrite, resp.Status, resp.Msg); werr != nil {
			return total, werr
		}
		if resp.N == 0 {
			break
		}
	}
	return total, nil
}

func (t *threadTransport) size() (int64, error) {
	resp, err := t.call(&wire.Request{Op: wire.OpSize})
	if err != nil {
		return 0, err
	}
	return resp.N, wire.ToError(wire.OpSize, resp.Status, resp.Msg)
}

func (t *threadTransport) truncate(n int64) error {
	resp, err := t.call(&wire.Request{Op: wire.OpTruncate, Off: n})
	if err != nil {
		return err
	}
	return wire.ToError(wire.OpTruncate, resp.Status, resp.Msg)
}

func (t *threadTransport) sync() error {
	resp, err := t.call(&wire.Request{Op: wire.OpSync})
	if err != nil {
		return err
	}
	return wire.ToError(wire.OpSync, resp.Status, resp.Msg)
}

func (t *threadTransport) lock(off, n int64) error {
	resp, err := t.call(&wire.Request{Op: wire.OpLock, Off: off, N: n})
	if err != nil {
		return err
	}
	return wire.ToError(wire.OpLock, resp.Status, resp.Msg)
}

func (t *threadTransport) unlock(off, n int64) error {
	resp, err := t.call(&wire.Request{Op: wire.OpUnlock, Off: off, N: n})
	if err != nil {
		return err
	}
	return wire.ToError(wire.OpUnlock, resp.Status, resp.Msg)
}

func (t *threadTransport) control(req []byte) ([]byte, error) {
	resp, err := t.call(&wire.Request{Op: wire.OpControl, Data: req})
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(resp.Data))
	copy(out, resp.Data)
	return out, wire.ToError(wire.OpControl, resp.Status, resp.Msg)
}

func (t *threadTransport) close() error {
	resp, callErr := t.call(&wire.Request{Op: wire.OpClose})
	t.rv.Close()
	<-t.done // wait for the sentinel goroutine to exit
	if callErr != nil {
		if errors.Is(callErr, wire.ErrClosed) {
			return nil // already shut down
		}
		return callErr
	}
	return wire.ToError(wire.OpClose, resp.Status, resp.Msg)
}
