package core

import (
	"errors"
	"io"
	"sync"

	"repro/internal/ipc"
	"repro/internal/wire"
)

// threadWorkers is the size of the sentinel worker pool serving one
// DLL-with-thread session. Handler calls serialize inside the dispatcher
// regardless, so workers buy pipelining — while one operation executes, the
// rendezvous handoffs, reply delivery, and result copies of the others
// overlap — not unsynchronized program access.
const threadWorkers = 8

// threadReply carries a dispatch result back across the rendezvous: the
// response plus the release that returns its pooled read buffer. The caller
// must invoke release after consuming resp.Data.
type threadReply struct {
	resp    wire.Response
	release func()
}

// threadTransport implements the DLL-with-thread strategy (§4.3): the
// sentinel runs as goroutines inside the application process and each file
// operation is a synchronous rendezvous with one of them — the analogue of
// the paper's shared-memory buffers with event signalling ("the application
// simply switches over to the sentinel thread ... without requiring costly
// interactions across process boundaries"). Unlike the original
// one-goroutine loop, a small worker pool drains the rendezvous, so
// independent operations pipeline: any number of application goroutines may
// rendezvous concurrently, correlated by Seq.
type threadTransport struct {
	rv  *ipc.Rendezvous[*wire.Request, threadReply]
	d   *dispatcher
	seq wire.SeqCounter
	wg  sync.WaitGroup // sentinel workers
	pf  *prefetcher    // client-side read-ahead; nil when opted out
}

var _ transport = (*threadTransport)(nil)

// threadOptions selects the thread strategy's data-path optimizations,
// mirroring the procctl sentinel's ctrlOptions.
type threadOptions struct {
	readAhead   bool
	writeBehind bool
}

// newThreadTransport starts the sentinel worker pool over handler and
// returns the connected transport. The workers exit when the transport
// closes.
func newThreadTransport(handler Handler, opts threadOptions) *threadTransport {
	t := &threadTransport{
		rv: ipc.NewRendezvous[*wire.Request, threadReply](),
		d:  newDispatcher(handler),
	}
	if opts.writeBehind {
		t.d.enableWriteBehind()
	}
	if opts.readAhead {
		// Sequential reads are answered from the window by a memcpy; the
		// async fill rendezvouses with a sentinel worker in the background,
		// off the application's critical path.
		t.pf = newPrefetcher(t.callReadAt, true)
	}
	t.wg.Add(threadWorkers)
	for i := 0; i < threadWorkers; i++ {
		go t.sentinelMain()
	}
	go t.reap()
	return t
}

// sentinelMain is the SentinelThrdMain dispatch loop, now one of several:
// block on the rendezvous for control messages, perform the operation
// through the shared concurrency-safe dispatcher, reply.
func (t *threadTransport) sentinelMain() {
	defer t.wg.Done()
	for {
		req, reply, err := t.rv.Next()
		if err != nil {
			return
		}
		resp, release := t.d.dispatch(req)
		reply(threadReply{resp: resp, release: release})
		if req.Op == wire.OpClose {
			t.rv.Close() // wake the remaining workers
			return
		}
	}
}

// reap joins the worker pool and releases program resources if the session
// was abandoned (transport closed without an explicit OpClose). The
// dispatcher's once-guard makes this a no-op after a served OpClose.
func (t *threadTransport) reap() {
	t.wg.Wait()
	t.d.closeHandler()
}

// call performs one synchronous exchange with a sentinel worker. The
// returned release must be invoked after resp.Data has been consumed.
func (t *threadTransport) call(req *wire.Request) (wire.Response, func(), error) {
	req.Seq = t.seq.Next()
	r, err := t.rv.Call(req)
	if err != nil {
		return wire.Response{}, nil, wire.ErrClosed
	}
	return r.resp, r.release, nil
}

func (t *threadTransport) readAt(p []byte, off int64) (int, error) {
	if n, err, ok := t.pf.readAt(p, off); ok {
		return n, err
	}
	n, err := t.callReadAt(p, off)
	if err == nil || errors.Is(err, io.EOF) {
		t.pf.afterRead(off, n, len(p), errors.Is(err, io.EOF))
	}
	return n, err
}

// callReadAt reads through the sentinel rendezvous, chunked to the frame
// payload bound — the window-miss path, and the prefetcher's fill source.
func (t *threadTransport) callReadAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > wire.MaxPayload {
			chunk = wire.MaxPayload
		}
		resp, release, err := t.call(&wire.Request{Op: wire.OpRead, Off: off + int64(total), N: int64(chunk)})
		if err != nil {
			return total, err
		}
		n := copy(p[total:], resp.Data)
		release()
		total += n
		if werr := wire.ToError(wire.OpRead, resp.Status, resp.Msg); werr != nil {
			return total, werr
		}
		if n == 0 {
			break
		}
	}
	return total, nil
}

func (t *threadTransport) writeAt(p []byte, off int64) (int, error) {
	defer t.pf.invalidate() // written content may overlap the window
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > wire.MaxPayload {
			chunk = wire.MaxPayload
		}
		resp, release, err := t.call(&wire.Request{Op: wire.OpWrite, Off: off + int64(total), Data: p[total : total+chunk]})
		if err != nil {
			return total, err
		}
		release()
		total += int(resp.N)
		if werr := wire.ToError(wire.OpWrite, resp.Status, resp.Msg); werr != nil {
			return total, werr
		}
		if resp.N == 0 {
			break
		}
	}
	return total, nil
}

func (t *threadTransport) size() (int64, error) {
	resp, release, err := t.call(&wire.Request{Op: wire.OpSize})
	if err != nil {
		return 0, err
	}
	release()
	return resp.N, wire.ToError(wire.OpSize, resp.Status, resp.Msg)
}

func (t *threadTransport) truncate(n int64) error {
	defer t.pf.invalidate()
	resp, release, err := t.call(&wire.Request{Op: wire.OpTruncate, Off: n})
	if err != nil {
		return err
	}
	release()
	return wire.ToError(wire.OpTruncate, resp.Status, resp.Msg)
}

func (t *threadTransport) sync() error {
	resp, release, err := t.call(&wire.Request{Op: wire.OpSync})
	if err != nil {
		return err
	}
	release()
	return wire.ToError(wire.OpSync, resp.Status, resp.Msg)
}

func (t *threadTransport) lock(off, n int64) error {
	resp, release, err := t.call(&wire.Request{Op: wire.OpLock, Off: off, N: n})
	if err != nil {
		return err
	}
	release()
	return wire.ToError(wire.OpLock, resp.Status, resp.Msg)
}

func (t *threadTransport) unlock(off, n int64) error {
	resp, release, err := t.call(&wire.Request{Op: wire.OpUnlock, Off: off, N: n})
	if err != nil {
		return err
	}
	release()
	return wire.ToError(wire.OpUnlock, resp.Status, resp.Msg)
}

func (t *threadTransport) control(req []byte) ([]byte, error) {
	defer t.pf.invalidate() // the program may mutate content out of band
	resp, release, err := t.call(&wire.Request{Op: wire.OpControl, Data: req})
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(resp.Data))
	copy(out, resp.Data)
	release()
	return out, wire.ToError(wire.OpControl, resp.Status, resp.Msg)
}

func (t *threadTransport) close() error {
	resp, release, callErr := t.call(&wire.Request{Op: wire.OpClose})
	t.rv.Close()
	t.wg.Wait() // join every sentinel worker before returning
	if callErr != nil {
		if errors.Is(callErr, wire.ErrClosed) {
			return nil // already shut down
		}
		return callErr
	}
	release()
	return wire.ToError(wire.OpClose, resp.Status, resp.Msg)
}
