package core_test

import (
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"

	"repro/internal/backend/conformance"
	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/vfs"
)

// The backend × strategy conformance matrix: every backend kind, reached
// end-to-end through every implementation strategy via the manifest's
// backend= parameter, must satisfy the same os.File contract the backends
// pass when driven directly (package backend's tests). The handle is the
// object under test — operations cross the strategy's transport (pipes,
// rendezvous, or direct calls) before touching the backend.

// matrixSeq makes object names unique across factory calls, so each
// conformance subtest binds an independent object.
var matrixSeq atomic.Int64

func nextObjName() string {
	return "obj" + strconv.FormatInt(matrixSeq.Add(1), 10)
}

// openBackendAF creates an active file whose passthrough sentinel binds
// spec/object, and opens it with the given strategy.
func openBackendAF(t *testing.T, strategy core.Strategy, spec, object string) *core.Handle {
	t.Helper()
	path := filepath.Join(t.TempDir(), "file.af")
	if err := vfs.Create(path, vfs.Manifest{
		Program: vfs.ProgramSpec{Name: "passthrough"},
		Cache:   "none",
		NoData:  true,
		Params:  map[string]string{vfs.ParamBackend: spec, vfs.ParamObject: object},
	}); err != nil {
		t.Fatalf("vfs.Create: %v", err)
	}
	h, err := core.Open(path, core.Options{Strategy: strategy})
	if err != nil {
		t.Fatalf("Open(backend=%s via %v): %v", spec, strategy, err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

// matrixCell describes one backend column: how to provision an object seeded
// with content. seedViaHandle marks backends with no out-of-band seeding
// channel visible to a re-exec'd sentinel (mem lives in the opener's — or
// the child's — own address space), so the factory writes the seed through
// the freshly opened handle instead.
type matrixCell struct {
	name          string
	rw            bool
	seedViaHandle bool
	provision     func(t *testing.T, content []byte) (spec, object string)
}

// matrixCells builds the backend columns; remote cells bind the given
// FileServer.
func matrixCells(t *testing.T, srv *remote.FileServer, addr string) []matrixCell {
	seedDir := func(t *testing.T, content []byte) (string, string) {
		dir := t.TempDir()
		name := nextObjName()
		if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
			t.Fatalf("seed %s: %v", name, err)
		}
		return dir, name
	}
	return []matrixCell{
		{name: "mem", rw: true, seedViaHandle: true,
			provision: func(t *testing.T, content []byte) (string, string) {
				return "mem", nextObjName()
			}},
		{name: "nativefs", rw: true,
			provision: func(t *testing.T, content []byte) (string, string) {
				dir, name := seedDir(t, content)
				return "nativefs:" + dir, name
			}},
		{name: "rofs", rw: false,
			provision: func(t *testing.T, content []byte) (string, string) {
				dir, name := seedDir(t, content)
				return "rofs:nativefs:" + dir, name
			}},
		{name: "errorfs", rw: true,
			provision: func(t *testing.T, content []byte) (string, string) {
				dir, name := seedDir(t, content)
				return "errorfs(rate=0,seed=1):nativefs:" + dir, name
			}},
		{name: "remote", rw: true,
			provision: func(t *testing.T, content []byte) (string, string) {
				name := nextObjName()
				srv.Put(name, content)
				return "remote:" + addr, name
			}},
	}
}

// TestBackendStrategyMatrix runs the full conformance profile over every
// backend through every positioned strategy (procctl, thread, direct).
func TestBackendStrategyMatrix(t *testing.T) {
	srv := remote.NewFileServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("file server: %v", err)
	}
	defer srv.Close()

	for _, strategy := range positionedStrategies {
		strategy := strategy
		for _, cell := range matrixCells(t, srv, addr) {
			cell := cell
			t.Run(strategy.String()+"/"+cell.name, func(t *testing.T) {
				factory := func(t *testing.T, content []byte) conformance.Object {
					spec, object := cell.provision(t, content)
					h := openBackendAF(t, strategy, spec, object)
					if cell.seedViaHandle && len(content) > 0 {
						if _, err := h.WriteAt(content, 0); err != nil {
							t.Fatalf("seed via handle: %v", err)
						}
					}
					return h
				}
				if cell.rw {
					conformance.RunRW(t, factory)
				} else {
					conformance.RunRO(t, factory)
				}
			})
		}
	}
}

// TestBackendProcessStreamMatrix covers the plain process strategy, whose
// pipes-only transport has no positioning: every externally seedable backend
// must reproduce its content through a sequential read stream.
func TestBackendProcessStreamMatrix(t *testing.T) {
	srv := remote.NewFileServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("file server: %v", err)
	}
	defer srv.Close()

	for _, cell := range matrixCells(t, srv, addr) {
		cell := cell
		if cell.seedViaHandle {
			// mem has no seeding channel reaching the sentinel subprocess
			// (its objects live in the child's memory); the write-stream
			// test below covers that cell's reachable half.
			continue
		}
		t.Run("process/"+cell.name, func(t *testing.T) {
			conformance.RunStreamRO(t, func(t *testing.T, content []byte) conformance.Stream {
				spec, object := cell.provision(t, content)
				return openBackendAF(t, core.StrategyProcess, spec, object)
			})
		})
	}
}

// TestBackendProcessMemWriteStream exercises the one mem × process cell the
// stream profile cannot: a write stream into a sentinel-private mem backend
// must be accepted and the session must close cleanly.
func TestBackendProcessMemWriteStream(t *testing.T) {
	h := openBackendAF(t, core.StrategyProcess, "mem", nextObjName())
	if _, err := h.Write([]byte("held in the sentinel's own memory")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
