package loglock

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAppendAndContents(t *testing.T) {
	m := New(filepath.Join(t.TempDir(), "app.log"))
	if err := m.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := m.Append([]byte("second\n")); err != nil {
		t.Fatal(err)
	}
	got, err := m.Contents()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first\nsecond\n" {
		t.Errorf("Contents = %q", got)
	}
}

func TestContentsMissingFile(t *testing.T) {
	m := New(filepath.Join(t.TempDir(), "never.log"))
	got, err := m.Contents()
	if err != nil || got != nil {
		t.Errorf("Contents = (%q, %v), want (nil, nil)", got, err)
	}
}

func TestRecords(t *testing.T) {
	m := New(filepath.Join(t.TempDir(), "r.log"))
	for i := 0; i < 3; i++ {
		if err := m.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := m.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || string(recs[0]) != "rec-0" || string(recs[2]) != "rec-2" {
		t.Errorf("Records = %q", recs)
	}
}

func TestConcurrentAppendsNeverInterleave(t *testing.T) {
	m := New(filepath.Join(t.TempDir(), "conc.log"))
	const writers = 8
	const perWriter = 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				record := fmt.Sprintf("writer-%d-entry-%d", w, i)
				if err := m.Append([]byte(record)); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	recs, err := m.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers*perWriter {
		t.Fatalf("got %d records, want %d", len(recs), writers*perWriter)
	}
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		line := string(r)
		if !strings.HasPrefix(line, "writer-") || strings.Count(line, "writer-") != 1 {
			t.Fatalf("interleaved record: %q", line)
		}
		if seen[line] {
			t.Fatalf("duplicate record: %q", line)
		}
		seen[line] = true
	}
}

func TestMultipleManagersSameFile(t *testing.T) {
	// Two managers simulate sentinels in different processes synchronizing
	// on the same log through the lock file.
	path := filepath.Join(t.TempDir(), "shared.log")
	m1 := New(path)
	m2 := New(path)
	var wg sync.WaitGroup
	for i, m := range []*Manager{m1, m2} {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := m.Append([]byte(fmt.Sprintf("m%d-%d", i, j))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	recs, err := m1.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 40 {
		t.Errorf("got %d records, want 40", len(recs))
	}
}

func TestCompactKeepsTail(t *testing.T) {
	m := New(filepath.Join(t.TempDir(), "c.log"))
	for i := 0; i < 10; i++ {
		m.Append([]byte(fmt.Sprintf("entry-%d", i)))
	}
	if err := m.Compact(3); err != nil {
		t.Fatal(err)
	}
	recs, err := m.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if string(recs[0]) != "entry-7" || string(recs[2]) != "entry-9" {
		t.Errorf("kept = %q", recs)
	}
}

func TestCompactNoOpWhenSmall(t *testing.T) {
	m := New(filepath.Join(t.TempDir(), "s.log"))
	m.Append([]byte("only"))
	if err := m.Compact(5); err != nil {
		t.Fatal(err)
	}
	recs, _ := m.Records()
	if len(recs) != 1 {
		t.Errorf("records = %q", recs)
	}
}

func TestCompactMissingFile(t *testing.T) {
	m := New(filepath.Join(t.TempDir(), "none.log"))
	if err := m.Compact(3); err != nil {
		t.Errorf("Compact on missing log: %v", err)
	}
}

func TestCompactRejectsNegativeKeep(t *testing.T) {
	m := New(filepath.Join(t.TempDir(), "n.log"))
	if err := m.Compact(-1); err == nil {
		t.Error("Compact(-1) succeeded")
	}
}

func TestStaleLockBroken(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stale.log")
	m := New(path)
	// Simulate a crashed holder: a lock file with an ancient mtime.
	lock := path + ".lock"
	if err := os.WriteFile(lock, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-lockStaleAfter - time.Minute)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	if err := m.Append([]byte("recovered")); err != nil {
		t.Fatalf("Append with stale lock present: %v", err)
	}
	recs, _ := m.Records()
	if len(recs) != 1 || string(recs[0]) != "recovered" {
		t.Errorf("records = %q", recs)
	}
}
