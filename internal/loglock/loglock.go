// Package loglock implements the concurrent, intelligent logging manager of
// §3: "several processes log events using the same log file. As the sentinel
// process receives each log record, it locks the file, writes the record and
// unlocks the file. The processes generating the logs do not need to know
// about log file locking." A lock file provides mutual exclusion between
// sentinels in different processes; an in-process mutex covers goroutine
// sentinels sharing this manager.
package loglock

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Lock acquisition tuning.
const (
	lockRetryDelay = 500 * time.Microsecond
	lockStaleAfter = 30 * time.Second
	lockTimeout    = 10 * time.Second
)

// ErrLockTimeout reports failure to acquire the log lock in time.
var ErrLockTimeout = errors.New("loglock: timed out waiting for log lock")

// Manager serializes appends to one log file across processes.
type Manager struct {
	path     string
	lockPath string
	mu       sync.Mutex
}

// New returns a manager for the log at path. The lock file lives beside it.
func New(path string) *Manager {
	return &Manager{path: path, lockPath: path + ".lock"}
}

// acquire takes the cross-process lock by exclusively creating the lock
// file, breaking locks older than lockStaleAfter (a crashed holder).
func (m *Manager) acquire() error {
	deadline := time.Now().Add(lockTimeout)
	for {
		f, err := os.OpenFile(m.lockPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			return nil
		}
		if !errors.Is(err, os.ErrExist) {
			return fmt.Errorf("create lock file: %w", err)
		}
		if info, serr := os.Stat(m.lockPath); serr == nil &&
			time.Since(info.ModTime()) > lockStaleAfter {
			os.Remove(m.lockPath) // break a stale lock; next loop retries
			continue
		}
		if time.Now().After(deadline) {
			return ErrLockTimeout
		}
		time.Sleep(lockRetryDelay)
	}
}

// release drops the cross-process lock.
func (m *Manager) release() {
	os.Remove(m.lockPath)
}

// Append adds one record to the log under the lock, ensuring it ends with a
// newline so records never interleave mid-line.
func (m *Manager) Append(record []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.acquire(); err != nil {
		return err
	}
	defer m.release()

	f, err := os.OpenFile(m.path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("open log: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(record); err != nil {
		return fmt.Errorf("append record: %w", err)
	}
	if len(record) == 0 || record[len(record)-1] != '\n' {
		if _, err := f.Write([]byte{'\n'}); err != nil {
			return fmt.Errorf("terminate record: %w", err)
		}
	}
	return nil
}

// Contents returns the current log bytes.
func (m *Manager) Contents() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, err := os.ReadFile(m.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return data, err
}

// Compact is the sentinel's background cleanup: under the lock, it rewrites
// the log keeping only the most recent keep records.
func (m *Manager) Compact(keep int) error {
	if keep < 0 {
		return fmt.Errorf("loglock: negative keep %d", keep)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.acquire(); err != nil {
		return err
	}
	defer m.release()

	data, err := os.ReadFile(m.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("read log: %w", err)
	}
	lines := splitRecords(data)
	if len(lines) <= keep {
		return nil
	}
	var out bytes.Buffer
	for _, line := range lines[len(lines)-keep:] {
		out.Write(line)
		out.WriteByte('\n')
	}
	tmp := m.path + ".tmp"
	if err := os.WriteFile(tmp, out.Bytes(), 0o644); err != nil {
		return fmt.Errorf("write compacted log: %w", err)
	}
	if err := os.Rename(tmp, m.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("commit compacted log: %w", err)
	}
	return nil
}

// Records returns the individual log records.
func (m *Manager) Records() ([][]byte, error) {
	data, err := m.Contents()
	if err != nil {
		return nil, err
	}
	return splitRecords(data), nil
}

func splitRecords(data []byte) [][]byte {
	data = bytes.TrimSuffix(data, []byte("\n"))
	if len(data) == 0 {
		return nil
	}
	return bytes.Split(data, []byte("\n"))
}
