// Quickstart: create an active file bound to a filtering sentinel and use
// it exactly like a regular file. The writing and reading code below would
// work unchanged on a passive file — that transparency is the mechanism's
// whole point.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/activefile"
	"repro/activefile/sentinel"
)

func main() {
	sentinel.MaybeChild() // become a sentinel if spawned as one
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "af-quickstart")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "notes.af")

	// An active file = data part + sentinel program. This one stores text
	// upper-cased and serves it back lower-cased.
	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "filter:upper"},
		Cache:   activefile.CacheDisk,
	}); err != nil {
		return err
	}

	// Legacy-style code: open, write, seek, read. Nothing here knows about
	// sentinels.
	f, err := activefile.Open(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("Hello, Active Files!")); err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	view, err := io.ReadAll(f)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	stored, err := os.ReadFile(activefile.DataPath(path))
	if err != nil {
		return err
	}

	fmt.Printf("application view: %s\n", view)
	fmt.Printf("stored data part: %s\n", stored)

	// The same file through a different implementation strategy — a real
	// sentinel subprocess — behaves identically.
	f2, err := activefile.Open(path, activefile.WithStrategy(activefile.StrategyProcess))
	if err != nil {
		return err
	}
	streamed, err := io.ReadAll(f2)
	if err != nil {
		return err
	}
	if err := f2.Close(); err != nil {
		return err
	}
	fmt.Printf("via subprocess:   %s\n", streamed)
	return nil
}
