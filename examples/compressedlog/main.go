// Compressedlog: two §3 filtering uses together. First, a compressed active
// file — the application reads and writes plain text while the data part
// holds the encoded form. Second, a concurrent log — many writers append
// through their own sentinels, which lock the file per record so entries
// never interleave, and compact old records on close.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/activefile"
	"repro/activefile/sentinel"
)

func main() {
	sentinel.MaybeChild()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "af-compressedlog")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	if err := compressedFile(dir); err != nil {
		return err
	}
	return concurrentLog(dir)
}

func compressedFile(dir string) error {
	path := filepath.Join(dir, "journal.af")
	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "compress"},
		Params:  map[string]string{"codec": "lz"},
	}); err != nil {
		return err
	}

	entry := strings.Repeat("2026-07-06 service heartbeat OK\n", 400)
	f, err := activefile.Open(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(entry)); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	stored, err := os.ReadFile(activefile.DataPath(path))
	if err != nil {
		return err
	}
	fmt.Printf("compressed file: %d plain bytes -> %d stored bytes (%.1fx)\n",
		len(entry), len(stored), float64(len(entry))/float64(len(stored)))

	// Reopen: the application sees plain text again, unaware of the codec.
	f2, err := activefile.Open(path)
	if err != nil {
		return err
	}
	defer f2.Close()
	size, err := f2.Size()
	if err != nil {
		return err
	}
	fmt.Printf("reopened view:   %d plain bytes\n", size)
	return nil
}

func concurrentLog(dir string) error {
	path := filepath.Join(dir, "events.af")
	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "logger"},
	}); err != nil {
		return err
	}

	// Five writers log concurrently; none of them knows about locking.
	var wg sync.WaitGroup
	for w := 0; w < 5; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := activefile.Open(path)
			if err != nil {
				log.Println("open:", err)
				return
			}
			defer f.Close()
			for i := 0; i < 8; i++ {
				record := fmt.Sprintf("worker=%d event=%d", w, i)
				if _, err := f.Write([]byte(record)); err != nil {
					log.Println("write:", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	data, err := os.ReadFile(activefile.DataPath(path))
	if err != nil {
		return err
	}
	records := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	fmt.Printf("concurrent log:  %d records, none interleaved\n", len(records))

	// A rotated log: the sentinel's background cleanup keeps only the
	// newest records when the session closes.
	rotated := filepath.Join(dir, "rotated.af")
	if err := activefile.Create(rotated, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "logger"},
		Params:  map[string]string{"keep": "10"},
	}); err != nil {
		return err
	}
	f, err := activefile.Open(rotated)
	if err != nil {
		return err
	}
	for i := 0; i < 15; i++ {
		if _, err := f.Write([]byte(fmt.Sprintf("entry %d", i))); err != nil {
			return err
		}
	}
	if err := f.Close(); err != nil { // close triggers compaction
		return err
	}
	data, err = os.ReadFile(activefile.DataPath(rotated))
	if err != nil {
		return err
	}
	records = strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	fmt.Printf("rotated log:     15 written, %d kept (keep=10), newest: %s\n",
		len(records), records[len(records)-1])
	return nil
}
