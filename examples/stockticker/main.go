// Stockticker: the paper's §3 aggregation example — "an active file that
// reflects the latest stock quotes (downloaded by the sentinel from a
// server) every time the file is opened". Two quote feeds stand in for
// distributed information sources; the active file merges them into one
// listing that any file-reading tool could consume.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/activefile"
	"repro/activefile/sentinel"
	"repro/activefile/services"
)

func main() {
	sentinel.MaybeChild()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two "remote" exchanges.
	nyse := services.NewQuoteServer([]services.Quote{
		{Symbol: "GM", Cents: 4250},
		{Symbol: "IBM", Cents: 11830},
	})
	nyseAddr, err := nyse.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer nyse.Close()

	nasdaq := services.NewQuoteServer([]services.Quote{
		{Symbol: "AAPL", Cents: 19254},
		{Symbol: "MSFT", Cents: 41089},
	})
	nasdaqAddr, err := nasdaq.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer nasdaq.Close()

	dir, err := os.MkdirTemp("", "af-ticker")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ticker.af")

	// The active file has no data part at all: its contents are synthesized
	// from the feeds on every open.
	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "quotes"},
		NoData:  true,
		Params:  map[string]string{"addrs": nyseAddr + "," + nasdaqAddr},
	}); err != nil {
		return err
	}

	cat := func(label string) error {
		f, err := activefile.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		listing, err := io.ReadAll(f)
		if err != nil {
			return err
		}
		fmt.Printf("--- %s\n%s", label, listing)
		return nil
	}

	if err := cat("opening bell"); err != nil {
		return err
	}

	// The market moves; a fresh open sees the new prices.
	nyse.Tick()
	nasdaq.SetQuote("AAPL", 20112)
	if err := cat("after the market moves"); err != nil {
		return err
	}

	// A long-lived reader can refresh in place with a control command.
	h, err := activefile.OpenActive(path)
	if err != nil {
		return err
	}
	defer h.Close()
	nasdaq.SetQuote("MSFT", 39001)
	if _, err := h.Control([]byte("refresh")); err != nil {
		return err
	}
	listing, err := io.ReadAll(h)
	if err != nil {
		return err
	}
	fmt.Printf("--- after in-place refresh\n%s", listing)
	return nil
}
