// Registryfile: the paper's §3 configuration-filtering use — "a file-based
// interface to the Windows system registry". The sentinel renders a
// hierarchical typed registry as editable text; valid edits written back
// become registry modifications, and malformed edits are rejected before
// they can corrupt anything.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/activefile"
	"repro/activefile/sentinel"
)

func main() {
	sentinel.MaybeChild()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "af-registry")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "config.af")

	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "registryfile"},
	}); err != nil {
		return err
	}

	// "Edit" the configuration with plain file writes.
	f, err := activefile.Open(path)
	if err != nil {
		return err
	}
	config := `[system/network]
dns = "10.0.0.1"
mtu = 1500

[system/display]
depth = 32
driver = "vga"
`
	if _, err := f.Write([]byte(config)); err != nil {
		return err
	}
	if err := f.Close(); err != nil { // close parses and commits the edit
		return err
	}

	// A fresh open shows the canonical rendering of the parsed registry.
	f2, err := activefile.Open(path)
	if err != nil {
		return err
	}
	rendered, err := io.ReadAll(f2)
	if err != nil {
		return err
	}
	if err := f2.Close(); err != nil {
		return err
	}
	fmt.Printf("--- registry as a file\n%s\n", rendered)

	// A malformed edit is rejected at flush time; the registry survives.
	f3, err := activefile.OpenActive(path)
	if err != nil {
		return err
	}
	defer f3.Close()
	if err := f3.Truncate(0); err != nil {
		return err
	}
	if _, err := f3.WriteAt([]byte("!!! not registry syntax !!!"), 0); err != nil {
		return err
	}
	if err := f3.Sync(); err != nil {
		fmt.Printf("malformed edit rejected: %v\n", err)
	} else {
		return fmt.Errorf("malformed edit was accepted")
	}
	return nil
}
