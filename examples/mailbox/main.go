// Mailbox: the paper's §3 mail examples. An outbox active file distributes
// every written message to the recipients named in its "To" header; an
// inbox active file aggregates messages from multiple POP-style servers on
// each open. A plain text editor plus these two files is a mail client.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/activefile"
	"repro/activefile/sentinel"
	"repro/activefile/services"
)

func main() {
	sentinel.MaybeChild()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two mail drops stand in for remote POP servers.
	homeServer := services.NewMailServer()
	homeAddr, err := homeServer.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer homeServer.Close()

	workServer := services.NewMailServer()
	workAddr, err := workServer.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer workServer.Close()

	dir, err := os.MkdirTemp("", "af-mailbox")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// The outbox: writing a message file sends it.
	outboxPath := filepath.Join(dir, "outbox.af")
	if err := activefile.Create(outboxPath, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "outbox"},
		NoData:  true,
		Params:  map[string]string{"server": homeAddr},
	}); err != nil {
		return err
	}

	outbox, err := activefile.Open(outboxPath)
	if err != nil {
		return err
	}
	message := "To: alice@home, bob@home\nSubject: lunch?\n\nnoon at the usual place\n"
	if _, err := outbox.Write([]byte(message)); err != nil {
		return err
	}
	if err := outbox.Close(); err != nil { // close flushes: the mail goes out
		return err
	}
	fmt.Printf("sent; alice@home has %d message(s), bob@home has %d\n",
		homeServer.Count("alice@home"), homeServer.Count("bob@home"))

	// Seed the work account too, then read the aggregated inbox.
	workServer.Deposit("alice@work", []byte("To: alice@work\nSubject: standup\n\nmoved to 9:30\n"))

	inboxPath := filepath.Join(dir, "inbox.af")
	if err := activefile.Create(inboxPath, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "inbox"},
		NoData:  true,
		Params: map[string]string{
			"servers": homeAddr + "/alice@home, " + workAddr + "/alice@work",
		},
	}); err != nil {
		return err
	}

	inbox, err := activefile.Open(inboxPath)
	if err != nil {
		return err
	}
	defer inbox.Close()
	all, err := io.ReadAll(inbox)
	if err != nil {
		return err
	}
	fmt.Printf("--- alice's unified inbox (both servers)\n%s", all)
	return nil
}
