// Legacyapp: the paper's integration thesis from the legacy side. A
// word-count tool written years ago against a Win32-shaped handle API runs
// unmodified over (1) a plain local file, (2) a compressed active file, and
// (3) an active file whose content lives on a remote server — and cannot
// tell them apart.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/activefile"
	"repro/activefile/legacy"
	"repro/activefile/sentinel"
	"repro/activefile/services"
)

// wordCount is the "legacy application": handle-based, byte-oriented, and
// completely unaware of active files.
func wordCount(t *legacy.Table, path string) (int, error) {
	h, err := t.OpenFile(path)
	if err != nil {
		return 0, err
	}
	defer t.CloseHandle(h)

	words, inWord := 0, false
	buf := make([]byte, 128)
	for {
		n, err := t.ReadFile(h, buf)
		for _, b := range buf[:n] {
			space := b == ' ' || b == '\n' || b == '\t'
			if !space && !inWord {
				words++
			}
			inWord = !space
		}
		if errors.Is(err, io.EOF) || (err == nil && n == 0) {
			return words, nil
		}
		if err != nil {
			return words, err
		}
	}
}

func main() {
	sentinel.MaybeChild()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "af-legacy")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	const text = "the quick brown fox jumps over the lazy dog\n"
	table := legacy.NewTable()

	// 1. A plain passive file.
	passive := filepath.Join(dir, "plain.txt")
	if err := os.WriteFile(passive, []byte(text), 0o644); err != nil {
		return err
	}

	// 2. A compressed active file holding the same text.
	compressed := filepath.Join(dir, "packed.af")
	if err := activefile.Create(compressed, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "compress"},
	}); err != nil {
		return err
	}
	f, err := activefile.Open(compressed)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(text)); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// 3. An active file proxying a remote object with the same text.
	srv := services.NewFileServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	srv.Put("essay", []byte(text))
	remotePath := filepath.Join(dir, "remote.af")
	if err := activefile.Create(remotePath, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "passthrough"},
		Cache:   activefile.CacheNone,
		Source:  activefile.SourceSpec{Kind: "tcp", Addr: addr, Path: "essay"},
	}); err != nil {
		return err
	}

	for _, tc := range []struct{ label, path string }{
		{"plain local file:         ", passive},
		{"compressed active file:   ", compressed},
		{"remote-backed active file:", remotePath},
	} {
		words, err := wordCount(table, tc.path)
		if err != nil {
			return fmt.Errorf("%s %w", tc.label, err)
		}
		fmt.Printf("%s %d words\n", tc.label, words)
	}
	return nil
}
