// Benchmarks regenerating the paper's evaluation (Figure 6): Read and Write
// overheads per implementation strategy, block size, and caching path. Each
// BenchmarkFig6* function is one panel; sub-benchmarks sweep the strategies
// the paper plots (procctl = its "Process" line, thread, direct = its "DLL"
// line) and the block sizes {8, 32, 128, 512, 2048}. BenchmarkBaseline is
// the no-sentinel series; BenchmarkAblation* cover design alternatives the
// paper discusses but does not plot. cmd/afbench prints the same data with
// the paper's fixed-1000-calls methodology.
package repro_test

import (
	"fmt"
	"io"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/program"
	"repro/internal/vfs"
)

func TestMain(m *testing.M) {
	program.RegisterAll()
	core.RunChildIfRequested()
	os.Exit(m.Run())
}

var (
	runnerOnce sync.Once
	runner     *bench.Runner
	runnerErr  error
)

// sharedRunner lazily provisions the scratch dir and remote service shared
// by every benchmark in this file.
func sharedRunner(b *testing.B) *bench.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		dir, err := os.MkdirTemp("", "afbench")
		if err != nil {
			runnerErr = err
			return
		}
		runner, runnerErr = bench.NewRunner(dir)
	})
	if runnerErr != nil {
		b.Fatalf("bench runner: %v", runnerErr)
	}
	return runner
}

// figureStrategies are the three series of every Figure 6 panel.
var figureStrategies = []core.Strategy{
	core.StrategyProcCtl, // the paper's "Process" line
	core.StrategyThread,
	core.StrategyDirect, // the paper's "DLL" line
}

// benchPanel runs one Figure 6 panel as sub-benchmarks strategy/block.
func benchPanel(b *testing.B, path bench.CachePath, op bench.Op) {
	r := sharedRunner(b)
	for _, strategy := range figureStrategies {
		for _, block := range bench.BlockSizes {
			name := fmt.Sprintf("%s/%d", strategy, block)
			b.Run(name, func(b *testing.B) {
				h, size, cleanup, err := r.Setup(bench.Config{
					Strategy:  strategy,
					Path:      path,
					Op:        op,
					BlockSize: block,
					Ops:       bench.DefaultOps,
				})
				if err != nil {
					b.Fatalf("setup: %v", err)
				}
				defer cleanup()
				buf := make([]byte, block)
				b.SetBytes(int64(block))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					off := (int64(i) * int64(block)) % size
					if op == bench.OpRead {
						_, err = h.ReadAt(buf, off)
					} else {
						_, err = h.WriteAt(buf, off)
					}
					if err != nil {
						b.Fatalf("op %d: %v", i, err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6aRead is Figure 6(a) Read: sentinel forwards to a remote
// source on every operation.
func BenchmarkFig6aRead(b *testing.B) { benchPanel(b, bench.PathRemote, bench.OpRead) }

// BenchmarkFig6aWrite is Figure 6(a) Write.
func BenchmarkFig6aWrite(b *testing.B) { benchPanel(b, bench.PathRemote, bench.OpWrite) }

// BenchmarkFig6bRead is Figure 6(b) Read: the on-disk data part is the
// cache; the remote source is off the critical path.
func BenchmarkFig6bRead(b *testing.B) { benchPanel(b, bench.PathDisk, bench.OpRead) }

// BenchmarkFig6bWrite is Figure 6(b) Write.
func BenchmarkFig6bWrite(b *testing.B) { benchPanel(b, bench.PathDisk, bench.OpWrite) }

// BenchmarkFig6cRead is Figure 6(c) Read: the cache lives in the sentinel's
// memory.
func BenchmarkFig6cRead(b *testing.B) { benchPanel(b, bench.PathMemory, bench.OpRead) }

// BenchmarkFig6cWrite is Figure 6(c) Write.
func BenchmarkFig6cWrite(b *testing.B) { benchPanel(b, bench.PathMemory, bench.OpWrite) }

// BenchmarkBaseline measures direct access with no sentinel, the series the
// paper reports as indistinguishable from DLL-only.
func BenchmarkBaseline(b *testing.B) {
	r := sharedRunner(b)
	for _, path := range []bench.CachePath{bench.PathRemote, bench.PathDisk, bench.PathMemory} {
		for _, op := range []bench.Op{bench.OpRead, bench.OpWrite} {
			for _, block := range bench.BlockSizes {
				name := fmt.Sprintf("%s/%s/%d", path, op, block)
				b.Run(name, func(b *testing.B) {
					// MeasureBaseline times a fixed op count; drive it b.N
					// ops at a time so testing.B owns the clock.
					b.SetBytes(int64(block))
					res, err := r.MeasureBaseline(path, op, block, b.N)
					if err != nil {
						b.Fatal(err)
					}
					_ = res
				})
			}
		}
	}
}

// BenchmarkAblationNoControlChannel compares the §4.1 plain-process
// strategy (two pipes, streaming only) against process-plus-control for
// sequential reads — the cost of the control-channel round trip. The plain
// process side streams from a generate program so any b.N is satisfiable.
func BenchmarkAblationNoControlChannel(b *testing.B) {
	r := sharedRunner(b)
	const block = 512

	b.Run("process-stream", func(b *testing.B) {
		dir := b.TempDir()
		path := dir + "/gen.af"
		if err := vfs.Create(path, vfs.Manifest{
			Program: vfs.ProgramSpec{Name: "generate"},
			NoData:  true,
			Params:  map[string]string{"size": "1099511627776"}, // effectively endless
		}); err != nil {
			b.Fatal(err)
		}
		h, err := core.Open(path, core.Options{Strategy: core.StrategyProcess})
		if err != nil {
			b.Fatal(err)
		}
		defer h.Close()
		buf := make([]byte, block)
		b.SetBytes(block)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := io.ReadFull(h, buf); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("procctl", func(b *testing.B) {
		h, size, cleanup, err := r.Setup(bench.Config{
			Strategy:  core.StrategyProcCtl,
			Path:      bench.PathDisk,
			Op:        bench.OpRead,
			BlockSize: block,
			Ops:       bench.DefaultOps,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer cleanup()
		buf := make([]byte, block)
		b.SetBytes(block)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := (int64(i) * block) % size
			if _, err := h.ReadAt(buf, off); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAsyncWrites quantifies the paper's footnote-1
// optimization: procctl writes stream without acknowledgement, so their
// per-op cost reflects bandwidth, while reads pay full round-trip latency.
func BenchmarkAblationAsyncWrites(b *testing.B) {
	r := sharedRunner(b)
	const block = 512
	for _, op := range []bench.Op{bench.OpRead, bench.OpWrite} {
		b.Run(op.String(), func(b *testing.B) {
			h, size, cleanup, err := r.Setup(bench.Config{
				Strategy:  core.StrategyProcCtl,
				Path:      bench.PathMemory,
				Op:        op,
				BlockSize: block,
				Ops:       bench.DefaultOps,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cleanup()
			buf := make([]byte, block)
			b.SetBytes(block)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (int64(i) * block) % size
				if op == bench.OpRead {
					_, err = h.ReadAt(buf, off)
				} else {
					_, err = h.WriteAt(buf, off)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationReadAhead measures the §4.2 eager-injection option: a
// procctl sentinel prefetching the next sequential block versus the plain
// dispatch loop, for sequential reads from the on-disk cache.
func BenchmarkAblationReadAhead(b *testing.B) {
	const block = 512
	for _, readAhead := range []bool{false, true} {
		name := "off"
		if readAhead {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			path := dir + "/ra.af"
			m := vfs.Manifest{
				Program: vfs.ProgramSpec{Name: "passthrough"},
				Cache:   "disk",
			}
			if readAhead {
				m.Params = map[string]string{"readahead": "true"}
			}
			if err := vfs.Create(path, m); err != nil {
				b.Fatal(err)
			}
			size := int64(block) * bench.DefaultOps
			content := make([]byte, size)
			if err := os.WriteFile(vfs.DataPath(path), content, 0o644); err != nil {
				b.Fatal(err)
			}
			h, err := core.Open(path, core.Options{Strategy: core.StrategyProcCtl})
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()
			buf := make([]byte, block)
			b.SetBytes(block)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (int64(i) * block) % size
				if _, err := h.ReadAt(buf, off); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBlockCache measures the §1 frequency cache: repeated
// reads of a hot region through the "cached" program versus uncached
// passthrough to the remote source.
func BenchmarkAblationBlockCache(b *testing.B) {
	r := sharedRunner(b)
	const block = 512
	for _, prog := range []struct {
		name    string
		program string
		params  map[string]string
	}{
		{name: "uncached", program: "passthrough"},
		{name: "cached", program: "cached", params: map[string]string{"blocksize": "512", "blocks": "16"}},
	} {
		b.Run(prog.name, func(b *testing.B) {
			h, size, cleanup, err := r.Setup(bench.Config{
				Strategy:  core.StrategyThread,
				Path:      bench.PathRemote,
				Op:        bench.OpRead,
				BlockSize: block,
				Ops:       bench.DefaultOps,
				Program:   prog.program,
				Params:    prog.params,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cleanup()
			buf := make([]byte, block)
			b.SetBytes(block)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A hot working set: 4 blocks, far smaller than the cache.
				off := (int64(i%4) * block) % size
				if _, err := h.ReadAt(buf, off); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCacheUnderLatency shows where the Figure 5 caching paths
// pay off: against a slow remote source (500µs injected per operation), the
// no-cache path pays the latency on every read while the disk and memory
// paths pay it only at open — the crossover the paper's §1 caching
// discussion predicts.
func BenchmarkAblationCacheUnderLatency(b *testing.B) {
	const block = 512
	dir, err := os.MkdirTemp("", "aflat")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	r, err := bench.NewRunner(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	r.SetRemoteLatency(500 * time.Microsecond)

	for _, path := range []bench.CachePath{bench.PathRemote, bench.PathDisk, bench.PathMemory} {
		b.Run(path.String(), func(b *testing.B) {
			h, size, cleanup, err := r.Setup(bench.Config{
				Strategy:  core.StrategyThread,
				Path:      path,
				Op:        bench.OpRead,
				BlockSize: block,
				Ops:       100, // keep the latency-bound populate step short
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cleanup()
			buf := make([]byte, block)
			b.SetBytes(block)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (int64(i) * block) % size
				if _, err := h.ReadAt(buf, off); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFilterCost measures what a non-null sentinel adds: the
// same direct-strategy memory path through the null filter versus an XOR
// cipher filter — supporting the paper's claim that "the eventual cost of
// using active files is determined only by the functionality that they
// implement".
func BenchmarkAblationFilterCost(b *testing.B) {
	const block = 512
	for _, prog := range []struct {
		name    string
		program string
		params  map[string]string
	}{
		{name: "null", program: "passthrough"},
		{name: "xor", program: "filter", params: map[string]string{"filter": "xor:benchkey"}},
	} {
		b.Run(prog.name, func(b *testing.B) {
			dir := b.TempDir()
			path := dir + "/f.af"
			if err := vfs.Create(path, vfs.Manifest{
				Program: vfs.ProgramSpec{Name: prog.program},
				Cache:   "memory",
				Params:  prog.params,
			}); err != nil {
				b.Fatal(err)
			}
			h, err := core.Open(path, core.Options{Strategy: core.StrategyDirect})
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()
			buf := make([]byte, block)
			if _, err := h.WriteAt(buf, 0); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(block)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.ReadAt(buf, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
