package activefile

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/interpose"
	"repro/internal/program"
)

// File is the operation set applications use — a regular file's API. Both
// passive files and active files satisfy it, which is the point: code
// holding a File cannot tell whether a sentinel is underneath.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.ReaderAt
	io.WriterAt
	io.Closer
	// Size returns the file length.
	Size() (int64, error)
	// Truncate sets the file length.
	Truncate(n int64) error
	// Sync flushes buffered state.
	Sync() error
}

// registerBuiltins installs the built-in sentinel programs exactly once,
// before the first open that may need them.
var registerBuiltins = sync.OnceFunc(program.RegisterAll)

// OpenOption adjusts one Open call.
type OpenOption interface {
	apply(*openConfig)
}

type openConfig struct {
	strategy Strategy
}

type strategyOpenOption Strategy

func (o strategyOpenOption) apply(c *openConfig) { c.strategy = Strategy(o) }

// WithStrategy overrides the file's default implementation strategy for
// this open.
func WithStrategy(s Strategy) OpenOption { return strategyOpenOption(s) }

// Open opens the file at path. An active path starts its sentinel and
// returns the connected handle; a passive path opens normally. Either way
// the result behaves as a regular file.
func Open(path string, opts ...OpenOption) (File, error) {
	if IsActive(path) {
		h, err := OpenActive(path, opts...)
		if err != nil {
			return nil, err
		}
		return h, nil
	}
	fs := interpose.New()
	return fs.Open(path)
}

// OpenActive opens an active file, returning the full handle with the
// operations that go beyond the regular file API (locks, control commands).
func OpenActive(path string, opts ...OpenOption) (*Handle, error) {
	registerBuiltins()
	var cfg openConfig
	for _, o := range opts {
		o.apply(&cfg)
	}
	cs, err := cfg.strategy.toCore()
	if err != nil {
		return nil, err
	}
	h, err := core.Open(path, core.Options{Strategy: cs})
	if err != nil {
		return nil, fmt.Errorf("open active file %q: %w", path, err)
	}
	return &Handle{inner: h}, nil
}

// Handle is an open active-file session. It satisfies File and additionally
// exposes byte-range locks and program-specific control commands.
type Handle struct {
	inner *core.Handle
}

var _ File = (*Handle)(nil)

// Read reads from the current offset.
func (h *Handle) Read(p []byte) (int, error) { return h.inner.Read(p) }

// Write writes at the current offset.
func (h *Handle) Write(p []byte) (int, error) { return h.inner.Write(p) }

// Seek repositions the offset.
func (h *Handle) Seek(off int64, whence int) (int64, error) { return h.inner.Seek(off, whence) }

// ReadAt reads at an absolute offset.
func (h *Handle) ReadAt(p []byte, off int64) (int, error) { return h.inner.ReadAt(p, off) }

// WriteAt writes at an absolute offset.
func (h *Handle) WriteAt(p []byte, off int64) (int, error) { return h.inner.WriteAt(p, off) }

// Size returns the session content length.
func (h *Handle) Size() (int64, error) { return h.inner.Size() }

// Truncate sets the content length.
func (h *Handle) Truncate(n int64) error { return h.inner.Truncate(n) }

// Sync flushes sentinel state (caches, pending distribution).
func (h *Handle) Sync() error { return h.inner.Sync() }

// Close ends the session and terminates the sentinel.
func (h *Handle) Close() error { return h.inner.Close() }

// Lock acquires a byte-range lock if the program supports it.
func (h *Handle) Lock(off, n int64) error { return h.inner.Lock(off, n) }

// Unlock releases a byte-range lock.
func (h *Handle) Unlock(off, n int64) error { return h.inner.Unlock(off, n) }

// Control sends a program-specific command (for example "refresh" to the
// quotes program) and returns its reply.
func (h *Handle) Control(req []byte) ([]byte, error) { return h.inner.Control(req) }

// Strategy reports which implementation strategy serves this handle.
func (h *Handle) Strategy() Strategy { return strategyFromCore(h.inner.Strategy()) }

// Stats counts a session's activity: operations issued and bytes moved
// through the sentinel, plus how many operations returned errors (EOF
// included). InFlight is a gauge of operations executing at the moment of the
// snapshot — handles accept concurrent calls, so it can exceed 1 under load.
type Stats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
	Errors       uint64
	InFlight     int64

	// Carrier names the control-channel conduit actually serving the
	// session ("pipe" or "shm"); empty when the strategy has no session
	// transport (thread, direct). CarrierFallback carries the reason a
	// transport=shm request was demoted to pipes, empty when the request
	// was honored or pipes were chosen.
	Carrier         string
	CarrierFallback string
}

// Stats returns a snapshot of the session's activity counters. It is safe to
// call concurrently with operations on the same handle.
func (h *Handle) Stats() Stats {
	s := h.inner.Stats()
	return Stats{
		Reads:           s.Reads,
		Writes:          s.Writes,
		BytesRead:       s.BytesRead,
		BytesWritten:    s.BytesWritten,
		Errors:          s.Errors,
		InFlight:        s.InFlight,
		Carrier:         s.Carrier,
		CarrierFallback: s.CarrierFallback,
	}
}

// DataPlaneStats is the session's syscall-economy ledger: ring doorbells
// rung versus suppressed by wakeup coalescing, and response frames decoded
// versus receive wakeups paid for them.
type DataPlaneStats struct {
	Carrier         string
	CarrierFallback string
	Doorbells       uint64
	Suppressed      uint64
	RecvFrames      uint64
	RecvWakeups     uint64
}

// DataPlaneStats reports the syscall-economy counters for strategies with a
// session transport. ok is false when the strategy has none (thread, direct).
func (h *Handle) DataPlaneStats() (DataPlaneStats, bool) {
	ds, ok := h.inner.DataPlaneStats()
	if !ok {
		return DataPlaneStats{}, false
	}
	return DataPlaneStats{
		Carrier:         ds.Carrier,
		CarrierFallback: ds.CarrierFallback,
		Doorbells:       ds.Doorbells,
		Suppressed:      ds.Suppressed,
		RecvFrames:      ds.RecvFrames,
		RecvWakeups:     ds.RecvWakeups,
	}, true
}

// FS opens files with active-file interposition under fixed options; use it
// to hand a whole subsystem a file-opening dependency that transparently
// supports active files.
type FS struct {
	inner *interpose.FS
}

// NewFS returns an interposing file system. Opts apply to every active open.
func NewFS(opts ...OpenOption) (*FS, error) {
	registerBuiltins()
	var cfg openConfig
	for _, o := range opts {
		o.apply(&cfg)
	}
	var iopts []interpose.Option
	if cfg.strategy != StrategyDefault {
		cs, err := cfg.strategy.toCore()
		if err != nil {
			return nil, err
		}
		iopts = append(iopts, interpose.WithStrategy(cs))
	}
	return &FS{inner: interpose.New(iopts...)}, nil
}

// Open opens path with interposition.
func (fs *FS) Open(path string) (File, error) { return fs.inner.Open(path) }

// Create opens path, creating a passive file if absent.
func (fs *FS) Create(path string) (File, error) { return fs.inner.Create(path) }

// Remove deletes path (both components of an active file).
func (fs *FS) Remove(path string) error { return fs.inner.Remove(path) }

// Copy duplicates src to dst.
func (fs *FS) Copy(src, dst string) error { return fs.inner.Copy(src, dst) }

// Rename moves src to dst.
func (fs *FS) Rename(src, dst string) error { return fs.inner.Rename(src, dst) }
