package legacy_test

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/activefile"
	"repro/activefile/legacy"
	"repro/activefile/sentinel"
)

func TestMain(m *testing.M) {
	sentinel.MaybeChild()
	os.Exit(m.Run())
}

// grepCount is a "legacy tool": it counts occurrences of a byte in a file it
// knows only through integer handles.
func grepCount(t *legacy.Table, path string, target byte) (int, error) {
	h, err := t.OpenFile(path)
	if err != nil {
		return 0, err
	}
	defer t.CloseHandle(h)
	count := 0
	buf := make([]byte, 64)
	for {
		n, err := t.ReadFile(h, buf)
		for _, b := range buf[:n] {
			if b == target {
				count++
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return count, nil
			}
			return count, err
		}
		if n == 0 {
			return count, nil
		}
	}
}

func TestLegacyToolOverPassiveAndActive(t *testing.T) {
	dir := t.TempDir()
	table := legacy.NewTable()

	passive := filepath.Join(dir, "p.txt")
	if err := os.WriteFile(passive, []byte("a-b-a-b-a"), 0o644); err != nil {
		t.Fatal(err)
	}

	active := filepath.Join(dir, "a.af")
	if err := activefile.Create(active, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "passthrough"},
		Cache:   activefile.CacheDisk,
	}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(activefile.DataPath(active), []byte("a-b-a-b-a"), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{passive, active} {
		got, err := grepCount(table, path, 'a')
		if err != nil {
			t.Fatalf("grepCount(%s): %v", path, err)
		}
		if got != 3 {
			t.Errorf("grepCount(%s) = %d, want 3", path, got)
		}
	}
	if table.OpenCount() != 0 {
		t.Errorf("OpenCount = %d", table.OpenCount())
	}
}

func TestTableWithStrategy(t *testing.T) {
	dir := t.TempDir()
	active := filepath.Join(dir, "s.af")
	if err := activefile.Create(active, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "filter:upper"},
		Cache:   activefile.CacheDisk,
	}); err != nil {
		t.Fatal(err)
	}

	table, err := legacy.NewTableWithStrategy("procctl")
	if err != nil {
		t.Fatal(err)
	}
	h, err := table.OpenFile(active)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := table.WriteFile(h, []byte("via procctl")); err != nil {
		t.Fatal(err)
	}
	if err := table.CloseHandle(h); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(activefile.DataPath(active))
	if err != nil || string(raw) != "VIA PROCCTL" {
		t.Errorf("stored = (%q, %v)", raw, err)
	}
}

func TestTableWithBadStrategy(t *testing.T) {
	if _, err := legacy.NewTableWithStrategy("kernel-mode"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestTableFullSurface(t *testing.T) {
	dir := t.TempDir()
	table := legacy.NewTable()
	h, err := table.CreateFile(filepath.Join(dir, "f.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer table.CloseAll()

	table.WriteFile(h, []byte("0123456789"))
	if size, err := table.GetFileSize(h); err != nil || size != 10 {
		t.Errorf("GetFileSize = (%d, %v)", size, err)
	}
	if err := table.SetEndOfFile(h, 4); err != nil {
		t.Fatal(err)
	}
	if pos, err := table.SetFilePointer(h, 0, io.SeekStart); err != nil || pos != 0 {
		t.Errorf("SetFilePointer = (%d, %v)", pos, err)
	}
	buf := make([]byte, 4)
	if _, err := table.ReadFile(h, buf); err != nil || string(buf) != "0123" {
		t.Errorf("ReadFile = (%q, %v)", buf, err)
	}
	if err := table.FlushFileBuffers(h); err != nil {
		t.Errorf("FlushFileBuffers: %v", err)
	}
	if err := table.LockFile(h, 0, 1); !errors.Is(err, activefile.ErrUnsupported) {
		t.Errorf("LockFile on passive err = %v, want ErrUnsupported", err)
	}
	if err := table.UnlockFile(h, 0, 1); !errors.Is(err, activefile.ErrUnsupported) {
		t.Errorf("UnlockFile on passive err = %v, want ErrUnsupported", err)
	}
	if _, err := table.ReadFile(legacy.InvalidHandle, buf); !errors.Is(err, legacy.ErrBadHandle) {
		t.Errorf("invalid handle err = %v, want ErrBadHandle", err)
	}
}
