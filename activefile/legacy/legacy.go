// Package legacy exposes the Win32-shaped, fictitious-handle file API for
// porting code whose structure follows the paper's instrumented applications:
// integer handles, OpenFile/ReadFile/WriteFile/SetFilePointer/GetFileSize/
// CloseHandle. A Table opens passive and active files alike; the handle the
// application holds betrays nothing about which it got.
//
//	t := legacy.NewTable()
//	h, _ := t.OpenFile("report.af") // or report.txt — same code either way
//	t.WriteFile(h, data)
//	t.SetFilePointer(h, 0, io.SeekStart)
//	t.ReadFile(h, buf)
//	t.CloseHandle(h)
package legacy

import (
	"repro/internal/core"
	"repro/internal/interpose"
	"repro/internal/program"
)

// Handle is a fictitious file handle issued by a Table.
type Handle = interpose.Handle

// InvalidHandle is returned by failed opens.
const InvalidHandle = interpose.InvalidHandle

// ErrBadHandle reports an operation on an unknown or closed handle.
var ErrBadHandle = interpose.ErrBadHandle

// Table issues and resolves fictitious handles over the interposing file
// system.
type Table struct {
	inner *interpose.HandleTable
}

// NewTable returns an empty handle table. Active opens use each file's
// default strategy.
func NewTable() *Table {
	program.RegisterAll()
	return &Table{inner: interpose.NewHandleTable(nil)}
}

// NewTableWithStrategy returns a table forcing every active open to the
// named strategy ("process", "procctl", "thread", "direct").
func NewTableWithStrategy(strategy string) (*Table, error) {
	program.RegisterAll()
	s, err := core.ParseStrategy(strategy)
	if err != nil {
		return nil, err
	}
	return &Table{inner: interpose.NewHandleTable(interpose.New(interpose.WithStrategy(s)))}, nil
}

// OpenFile opens an existing file (passive or active).
func (t *Table) OpenFile(path string) (Handle, error) { return t.inner.OpenFile(path) }

// CreateFile opens path, creating a passive file if absent.
func (t *Table) CreateFile(path string) (Handle, error) { return t.inner.CreateFile(path) }

// ReadFile reads from the handle's current position.
func (t *Table) ReadFile(h Handle, p []byte) (int, error) { return t.inner.ReadFile(h, p) }

// WriteFile writes at the handle's current position.
func (t *Table) WriteFile(h Handle, p []byte) (int, error) { return t.inner.WriteFile(h, p) }

// SetFilePointer repositions the handle (whence as in io.Seek*).
func (t *Table) SetFilePointer(h Handle, off int64, whence int) (int64, error) {
	return t.inner.SetFilePointer(h, off, whence)
}

// GetFileSize returns the file length.
func (t *Table) GetFileSize(h Handle) (int64, error) { return t.inner.GetFileSize(h) }

// SetEndOfFile truncates or extends the file.
func (t *Table) SetEndOfFile(h Handle, n int64) error { return t.inner.SetEndOfFile(h, n) }

// FlushFileBuffers flushes buffered state.
func (t *Table) FlushFileBuffers(h Handle) error { return t.inner.FlushFileBuffers(h) }

// LockFile acquires a byte-range lock (active files with locking programs).
func (t *Table) LockFile(h Handle, off, n int64) error { return t.inner.LockFile(h, off, n) }

// UnlockFile releases a byte-range lock.
func (t *Table) UnlockFile(h Handle, off, n int64) error { return t.inner.UnlockFile(h, off, n) }

// CloseHandle closes the file and retires the handle.
func (t *Table) CloseHandle(h Handle) error { return t.inner.CloseHandle(h) }

// OpenCount returns the number of live handles.
func (t *Table) OpenCount() int { return t.inner.OpenCount() }

// CloseAll closes every open handle.
func (t *Table) CloseAll() error { return t.inner.CloseAll() }
