package activefile_test

import (
	"fmt"
	"io"
	"io/fs"
	"log"
	"os"
	"path/filepath"

	"repro/activefile"
)

// A filtering active file is created once and then used exactly like a
// regular file: the write is stored upper-cased, the read comes back
// lower-cased, and the calling code never mentions the sentinel.
func Example() {
	dir, err := os.MkdirTemp("", "af-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "notes.af")

	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "filter:upper"},
		Cache:   activefile.CacheDisk,
	}); err != nil {
		log.Fatal(err)
	}

	f, err := activefile.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("Hello, Active Files")); err != nil {
		log.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		log.Fatal(err)
	}
	view, err := io.ReadAll(f)
	if err != nil {
		log.Fatal(err)
	}
	stored, err := os.ReadFile(activefile.DataPath(path))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("application sees:", string(view))
	fmt.Println("data part holds: ", string(stored))
	// Output:
	// application sees: hello, active files
	// data part holds:  HELLO, ACTIVE FILES
}

// Stat inspects an active file's definition without opening a session.
func ExampleStat() {
	dir, err := os.MkdirTemp("", "af-stat")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "journal.af")

	if err := activefile.Create(path, activefile.Definition{
		Program:  activefile.ProgramSpec{Name: "compress"},
		Strategy: activefile.StrategyThread,
		Params:   map[string]string{"codec": "lz"},
	}); err != nil {
		log.Fatal(err)
	}
	def, err := activefile.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("program: ", def.Program.Name)
	fmt.Println("strategy:", def.Strategy)
	fmt.Println("codec:   ", def.Params["codec"])
	// Output:
	// program:  compress
	// strategy: thread
	// codec:    lz
}

// DirFS plugs active files into anything that consumes io/fs: here,
// fs.ReadFile transparently decodes a rot13-filtered file.
func ExampleDirFS() {
	dir, err := os.MkdirTemp("", "af-dirfs")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "cipher.af")

	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "filter:rot13"},
		Cache:   activefile.CacheDisk,
	}); err != nil {
		log.Fatal(err)
	}
	h, err := activefile.OpenActive(path)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := h.Write([]byte("attack at dawn")); err != nil {
		log.Fatal(err)
	}
	if err := h.Close(); err != nil {
		log.Fatal(err)
	}

	var fsys fs.FS = activefile.DirFS(dir)
	plain, err := fs.ReadFile(fsys, "cipher.af")
	if err != nil {
		log.Fatal(err)
	}
	raw, err := os.ReadFile(activefile.DataPath(path))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("through io/fs:", string(plain))
	fmt.Println("on disk:      ", string(raw))
	// Output:
	// through io/fs: attack at dawn
	// on disk:       nggnpx ng qnja
}

// Copy produces an independent active file with the same program and data.
func ExampleCopy() {
	dir, err := os.MkdirTemp("", "af-copy")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	src := filepath.Join(dir, "src.af")
	dst := filepath.Join(dir, "dst.af")

	if err := activefile.Create(src, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "passthrough"},
		Cache:   activefile.CacheDisk,
	}); err != nil {
		log.Fatal(err)
	}
	if err := activefile.Copy(src, dst); err != nil {
		log.Fatal(err)
	}
	names, err := activefile.List(dir)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range names {
		fmt.Println(filepath.Base(name))
	}
	// Output:
	// dst.af
	// src.af
}
