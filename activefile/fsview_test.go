package activefile_test

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/activefile"
)

func setupFSTree(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "plain.txt"), []byte("passive"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	af := filepath.Join(dir, "sub", "shout.af")
	if err := activefile.Create(af, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "filter:rot13"},
		Cache:   activefile.CacheDisk,
	}); err != nil {
		t.Fatal(err)
	}
	// Store through the sentinel so the data part holds the rot13 form.
	h, err := activefile.OpenActive(af)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("secret")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestDirFSReadFileThroughSentinel(t *testing.T) {
	dir := setupFSTree(t)
	fsys := activefile.DirFS(dir)

	// fs.ReadFile on an active file returns the decoded application view.
	got, err := fs.ReadFile(fsys, "sub/shout.af")
	if err != nil {
		t.Fatalf("fs.ReadFile: %v", err)
	}
	if string(got) != "secret" {
		t.Errorf("active view = %q, want %q", got, "secret")
	}
	// While the raw stored form is rot13.
	raw, err := os.ReadFile(filepath.Join(dir, "sub", "shout.af.data"))
	if err != nil || string(raw) != "frperg" {
		t.Errorf("stored form = (%q, %v)", raw, err)
	}
	// Passive files pass straight through.
	got, err = fs.ReadFile(fsys, "plain.txt")
	if err != nil || string(got) != "passive" {
		t.Errorf("passive view = (%q, %v)", got, err)
	}
}

func TestDirFSStat(t *testing.T) {
	dir := setupFSTree(t)
	fsys := activefile.DirFS(dir)
	f, err := fsys.Open("sub/shout.af")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if info.Name() != "shout.af" || info.Size() != 6 || info.IsDir() {
		t.Errorf("info = %s/%d/dir=%v", info.Name(), info.Size(), info.IsDir())
	}
}

func TestDirFSWalk(t *testing.T) {
	dir := setupFSTree(t)
	fsys := activefile.DirFS(dir)
	var names []string
	err := fs.WalkDir(fsys, ".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			names = append(names, path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("WalkDir: %v", err)
	}
	sort.Strings(names)
	want := []string{"plain.txt", "sub/shout.af", "sub/shout.af.data"}
	if len(names) != len(want) {
		t.Fatalf("walked %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("walked %v, want %v", names, want)
			break
		}
	}
}

func TestDirFSInvalidPath(t *testing.T) {
	fsys := activefile.DirFS(t.TempDir())
	if _, err := fsys.Open("../escape"); err == nil {
		t.Error("Open with path escape succeeded")
	}
	var pathErr *fs.PathError
	_, err := fsys.Open("missing.af")
	if err == nil {
		t.Fatal("Open of missing active file succeeded")
	}
	if !errors.As(err, &pathErr) {
		t.Errorf("err = %T, want *fs.PathError", err)
	}
}

func TestDirFSIsFSTestCompatible(t *testing.T) {
	// Light structural conformance: Open returns files whose reads match
	// fs.ReadFile and whose Stat sizes agree with content length.
	dir := setupFSTree(t)
	fsys := activefile.DirFS(dir)
	for _, name := range []string{"plain.txt", "sub/shout.af"} {
		content, err := fs.ReadFile(fsys, name)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", name, err)
		}
		f, err := fsys.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		info, err := f.Stat()
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() != int64(len(content)) {
			t.Errorf("%s: Stat size %d, content %d", name, info.Size(), len(content))
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if !bytes.Equal(buf.Bytes(), content) {
			t.Errorf("%s: streamed read differs from ReadFile", name)
		}
	}
}
