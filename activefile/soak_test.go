package activefile_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/activefile"
)

// TestSoakMixedStrategies opens, uses, and closes many sessions
// concurrently across strategies and programs — the whole engine under
// simultaneous load. Run with -race for the full effect.
func TestSoakMixedStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	dir := t.TempDir()

	// A shared log everyone appends to.
	logPath := filepath.Join(dir, "shared.af")
	if err := activefile.Create(logPath, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "logger"},
	}); err != nil {
		t.Fatal(err)
	}

	strategies := []activefile.Strategy{
		activefile.StrategyThread,
		activefile.StrategyDirect,
		activefile.StrategyProcessControl,
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 6; w++ {
		w := w
		strategy := strategies[w%len(strategies)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			iterations := 10
			if strategy == activefile.StrategyProcessControl {
				iterations = 3 // subprocess spawns are costly
			}
			for i := 0; i < iterations; i++ {
				// Private filtered file: open, write, verify, close.
				path := filepath.Join(dir, fmt.Sprintf("w%d-i%d.af", w, i))
				if err := activefile.Create(path, activefile.Definition{
					Program: activefile.ProgramSpec{Name: "filter:rot13"},
					Cache:   activefile.CacheMemory,
				}); err != nil {
					errs <- err
					return
				}
				h, err := activefile.OpenActive(path, activefile.WithStrategy(strategy))
				if err != nil {
					errs <- err
					return
				}
				payload := []byte(fmt.Sprintf("worker %d iteration %d", w, i))
				if _, err := h.Write(payload); err != nil {
					errs <- err
					h.Close()
					return
				}
				back := make([]byte, len(payload))
				if _, err := h.ReadAt(back, 0); err != nil {
					errs <- err
					h.Close()
					return
				}
				if !bytes.Equal(back, payload) {
					errs <- fmt.Errorf("worker %d: corrupted round trip", w)
				}
				if err := h.Close(); err != nil {
					errs <- err
					return
				}

				// Shared log append through a fresh session.
				lh, err := activefile.OpenActive(logPath, activefile.WithStrategy(activefile.StrategyThread))
				if err != nil {
					errs <- err
					return
				}
				if _, err := lh.Write([]byte(fmt.Sprintf("log w%d i%d", w, i))); err != nil {
					errs <- err
				}
				if err := lh.Close(); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every log record arrived exactly once, unmangled.
	h, err := activefile.OpenActive(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	size, err := h.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if _, err := h.ReadAt(buf, 0); err != nil && size > 0 {
		t.Fatal(err)
	}
	records := strings.Split(strings.TrimSuffix(string(buf), "\n"), "\n")
	// Workers 0,3 thread (10 each), 1,4 direct (10 each), 2,5 procctl (3 each).
	want := 4*10 + 2*3
	if len(records) != want {
		t.Errorf("log records = %d, want %d", len(records), want)
	}
	seen := make(map[string]bool, len(records))
	for _, r := range records {
		if seen[r] {
			t.Errorf("duplicate record %q", r)
		}
		seen[r] = true
		if !strings.HasPrefix(r, "log w") {
			t.Errorf("mangled record %q", r)
		}
	}
}
