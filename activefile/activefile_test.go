package activefile_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/activefile"
	"repro/activefile/sentinel"
	"repro/internal/remote"
	"repro/internal/wire"
)

func TestMain(m *testing.M) {
	sentinel.MaybeChild()
	os.Exit(m.Run())
}

func TestStrategyAndCacheStrings(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{activefile.StrategyDefault.String(), "default"},
		{activefile.StrategyProcess.String(), "process"},
		{activefile.StrategyProcessControl.String(), "procctl"},
		{activefile.StrategyThread.String(), "thread"},
		{activefile.StrategyDirect.String(), "direct"},
		{activefile.CacheNone.String(), "none"},
		{activefile.CacheDisk.String(), "disk"},
		{activefile.CacheMemory.String(), "memory"},
	}
	for _, tt := range tests {
		if tt.give != tt.want {
			t.Errorf("got %q, want %q", tt.give, tt.want)
		}
	}
}

func TestCreateStatRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.af")
	def := activefile.Definition{
		Program:  activefile.ProgramSpec{Name: "filter:upper"},
		Strategy: activefile.StrategyThread,
		Cache:    activefile.CacheDisk,
		Source:   activefile.SourceSpec{Kind: "tcp", Addr: "127.0.0.1:9", Path: "o"},
		Params:   map[string]string{"k": "v"},
	}
	if err := activefile.Create(path, def); err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := activefile.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if got.Program.Name != "filter:upper" || got.Strategy != activefile.StrategyThread ||
		got.Cache != activefile.CacheDisk || got.Source.Addr != "127.0.0.1:9" ||
		got.Params["k"] != "v" {
		t.Errorf("Stat = %+v", got)
	}
}

func TestOpenTransparency(t *testing.T) {
	dir := t.TempDir()

	// The same application function works on a passive file and on an
	// active file with a null-equivalent sentinel.
	run := func(f activefile.File) string {
		t.Helper()
		if _, err := f.Write([]byte("payload")); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(f)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}

	passive := filepath.Join(dir, "p.txt")
	if err := os.WriteFile(passive, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	pf, err := activefile.Open(passive)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()

	active := filepath.Join(dir, "a.af")
	if err := activefile.Create(active, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "passthrough"},
		Cache:   activefile.CacheDisk,
	}); err != nil {
		t.Fatal(err)
	}
	af, err := activefile.Open(active)
	if err != nil {
		t.Fatal(err)
	}
	defer af.Close()

	if got := run(pf); got != "payload" {
		t.Errorf("passive = %q", got)
	}
	if got := run(af); got != "payload" {
		t.Errorf("active = %q", got)
	}
}

func TestOpenActiveWithStrategyOverride(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.af")
	if err := activefile.Create(path, activefile.Definition{
		Program:  activefile.ProgramSpec{Name: "passthrough"},
		Strategy: activefile.StrategyThread,
		Cache:    activefile.CacheMemory,
	}); err != nil {
		t.Fatal(err)
	}
	h, err := activefile.OpenActive(path, activefile.WithStrategy(activefile.StrategyDirect))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Strategy() != activefile.StrategyDirect {
		t.Errorf("Strategy = %v, want direct", h.Strategy())
	}
}

func TestAllStrategiesThroughPublicAPI(t *testing.T) {
	for _, strategy := range []activefile.Strategy{
		activefile.StrategyProcess,
		activefile.StrategyProcessControl,
		activefile.StrategyThread,
		activefile.StrategyDirect,
	} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "f.af")
			if err := activefile.Create(path, activefile.Definition{
				Program: activefile.ProgramSpec{Name: "passthrough"},
				Cache:   activefile.CacheDisk,
			}); err != nil {
				t.Fatal(err)
			}
			h, err := activefile.OpenActive(path, activefile.WithStrategy(strategy))
			if err != nil {
				t.Fatalf("OpenActive: %v", err)
			}
			if _, err := h.Write([]byte("across all strategies")); err != nil {
				t.Fatalf("Write: %v", err)
			}
			if err := h.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			stored, err := os.ReadFile(activefile.DataPath(path))
			if err != nil || string(stored) != "across all strategies" {
				t.Errorf("data part = (%q, %v)", stored, err)
			}
		})
	}
}

func TestDirectoryOperations(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.af")
	if err := activefile.Create(src, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "passthrough"},
		Cache:   activefile.CacheDisk,
	}); err != nil {
		t.Fatal(err)
	}
	if !activefile.IsActive(src) {
		t.Error("IsActive(src) = false")
	}

	cp := filepath.Join(dir, "copy.af")
	if err := activefile.Copy(src, cp); err != nil {
		t.Fatalf("Copy: %v", err)
	}
	mv := filepath.Join(dir, "moved.af")
	if err := activefile.Rename(cp, mv); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	list, err := activefile.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Errorf("List = %v, want 2 entries", list)
	}
	if err := activefile.Remove(mv); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	list, _ = activefile.List(dir)
	if len(list) != 1 {
		t.Errorf("List after Remove = %v", list)
	}
}

func TestFSInterposition(t *testing.T) {
	dir := t.TempDir()
	fs, err := activefile.NewFS(activefile.WithStrategy(activefile.StrategyDirect))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "via-fs.af")
	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "filter:rot13"},
		Cache:   activefile.CacheDisk,
	}); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("secret")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	stored, _ := os.ReadFile(activefile.DataPath(path))
	if string(stored) != "frperg" {
		t.Errorf("stored = %q, want rot13 of secret", stored)
	}
}

func TestPublicHandleStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.af")
	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "passthrough"},
		Cache:   activefile.CacheMemory,
	}); err != nil {
		t.Fatal(err)
	}
	h, err := activefile.OpenActive(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	h.Write([]byte("abcd"))
	h.ReadAt(make([]byte, 2), 0)
	got := h.Stats()
	if got.Writes != 1 || got.BytesWritten != 4 || got.Reads != 1 || got.BytesRead != 2 {
		t.Errorf("Stats = %+v", got)
	}
}

func TestFSDirectoryAndFileOperations(t *testing.T) {
	dir := t.TempDir()
	fs, err := activefile.NewFS()
	if err != nil {
		t.Fatal(err)
	}

	// Create a passive file through the FS.
	p := filepath.Join(dir, "made.txt")
	f, err := fs.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("fs file")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Copy, rename, remove through the same FS.
	cp := filepath.Join(dir, "copy.txt")
	if err := fs.Copy(p, cp); err != nil {
		t.Fatalf("Copy: %v", err)
	}
	mv := filepath.Join(dir, "moved.txt")
	if err := fs.Rename(cp, mv); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	got, err := os.ReadFile(mv)
	if err != nil || string(got) != "fs file" {
		t.Errorf("moved copy = (%q, %v)", got, err)
	}
	if err := fs.Remove(mv); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := os.Stat(mv); !errors.Is(err, os.ErrNotExist) {
		t.Error("file survived Remove")
	}

	// The same operations on an active file route through vfs.
	af := filepath.Join(dir, "a.af")
	if err := activefile.Create(af, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "passthrough"},
		Cache:   activefile.CacheDisk,
	}); err != nil {
		t.Fatal(err)
	}
	afCopy := filepath.Join(dir, "b.af")
	if err := fs.Copy(af, afCopy); err != nil {
		t.Fatalf("active Copy: %v", err)
	}
	if err := fs.Remove(afCopy); err != nil {
		t.Fatalf("active Remove: %v", err)
	}
	if _, err := os.Stat(activefile.DataPath(afCopy)); !errors.Is(err, os.ErrNotExist) {
		t.Error("active data part survived FS.Remove")
	}
}

// shoutProgram is a user-authored sentinel program registered through the
// public kit: reads come back exclaimed.
type shoutProgram struct{}

func (shoutProgram) Name() string { return "shout" }

func (shoutProgram) Open(env *sentinel.Env) (sentinel.Handler, error) {
	storage, err := env.OpenStorage()
	if err != nil {
		return nil, err
	}
	return &shoutHandler{storage: storage, bang: env.Param("bang", "!")}, nil
}

type shoutHandler struct {
	storage sentinel.Storage
	bang    string
}

func (h *shoutHandler) ReadAt(p []byte, off int64) (int, error) {
	n, err := h.storage.ReadAt(p, off)
	for i := 0; i < n; i++ {
		if p[i] == '.' {
			p[i] = h.bang[0]
		}
	}
	return n, err
}

func (h *shoutHandler) WriteAt(p []byte, off int64) (int, error) {
	return h.storage.WriteAt(p, off)
}

func (h *shoutHandler) Size() (int64, error)   { return h.storage.Size() }
func (h *shoutHandler) Truncate(n int64) error { return h.storage.Truncate(n) }
func (h *shoutHandler) Sync() error            { return h.storage.Sync() }
func (h *shoutHandler) Close() error           { return h.storage.Close() }

func TestCustomProgramViaSentinelKit(t *testing.T) {
	sentinel.Register(shoutProgram{})
	found := false
	for _, name := range sentinel.Programs() {
		if name == "shout" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered program not listed")
	}

	path := filepath.Join(t.TempDir(), "s.af")
	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "shout"},
		Cache:   activefile.CacheDisk,
	}); err != nil {
		t.Fatal(err)
	}
	h, err := activefile.OpenActive(path, activefile.WithStrategy(activefile.StrategyThread))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Write([]byte("calm. quiet.")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 12)
	if _, err := h.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "calm! quiet!" {
		t.Errorf("shouted view = %q", got)
	}
}

func TestHandleControlAndLockSurface(t *testing.T) {
	// The quotes program exposes Control; passthrough does not support Lock.
	srv := remote.NewQuoteServer([]remote.Quote{{Symbol: "Q", Cents: 100}})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dir := t.TempDir()
	quotes := filepath.Join(dir, "q.af")
	if err := activefile.Create(quotes, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "quotes"},
		NoData:  true,
		Params:  map[string]string{"addrs": addr},
	}); err != nil {
		t.Fatal(err)
	}
	h, err := activefile.OpenActive(quotes, activefile.WithStrategy(activefile.StrategyThread))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	reply, err := h.Control([]byte("refresh"))
	if err != nil || !strings.Contains(string(reply), "refreshed") {
		t.Errorf("Control = (%q, %v)", reply, err)
	}
	if err := h.Lock(0, 1); !errors.Is(err, wire.ErrUnsupported) {
		t.Errorf("Lock err = %v, want ErrUnsupported", err)
	}
	if err := h.Unlock(0, 1); !errors.Is(err, wire.ErrUnsupported) {
		t.Errorf("Unlock err = %v, want ErrUnsupported", err)
	}
}

func TestCompressThroughPublicAPI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.af")
	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "compress"},
	}); err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("compressible content "), 500)
	h, err := activefile.OpenActive(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write(content); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	stored, err := os.ReadFile(activefile.DataPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) >= len(content) {
		t.Errorf("stored %d >= content %d; no compression", len(stored), len(content))
	}
	h2, err := activefile.OpenActive(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	back, err := io.ReadAll(h2)
	if err != nil || !bytes.Equal(back, content) {
		t.Errorf("round trip: %d bytes, err %v", len(back), err)
	}
}

func TestCreateRejectsBadDefinition(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.af")
	err := activefile.Create(path, activefile.Definition{
		Program:  activefile.ProgramSpec{Name: "x"},
		Strategy: activefile.Strategy(42),
	})
	if err == nil {
		t.Error("Create with bogus strategy succeeded")
	}
}
