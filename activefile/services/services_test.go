package services_test

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/activefile"
	"repro/activefile/sentinel"
	"repro/activefile/services"
)

func TestMain(m *testing.M) {
	sentinel.MaybeChild()
	os.Exit(m.Run())
}

func TestFileServerBacksActiveFile(t *testing.T) {
	srv := services.NewFileServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Put("doc", []byte("remote document"))

	path := filepath.Join(t.TempDir(), "doc.af")
	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "passthrough"},
		Cache:   activefile.CacheNone,
		Source:  activefile.SourceSpec{Kind: "tcp", Addr: addr, Path: "doc"},
	}); err != nil {
		t.Fatal(err)
	}
	f, err := activefile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "remote document" {
		t.Errorf("read = (%q, %v)", got, err)
	}
	// And writes land on the server.
	if _, err := f.WriteAt([]byte("REMOTE"), 0); err != nil {
		t.Fatal(err)
	}
	obj, ok := srv.Get("doc")
	if !ok || string(obj) != "REMOTE document" {
		t.Errorf("server object = (%q, %v)", obj, ok)
	}
}

func TestFileServerLatency(t *testing.T) {
	srv := services.NewFileServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Put("slow", []byte("x"))
	srv.SetLatency(25 * time.Millisecond)

	path := filepath.Join(t.TempDir(), "slow.af")
	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "passthrough"},
		Cache:   activefile.CacheNone,
		Source:  activefile.SourceSpec{Kind: "tcp", Addr: addr, Path: "slow"},
	}); err != nil {
		t.Fatal(err)
	}
	f, err := activefile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("injected latency not observed through the sentinel")
	}
}

func TestQuoteServerBacksTicker(t *testing.T) {
	srv := services.NewQuoteServer([]services.Quote{{Symbol: "T", Cents: 4200}})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Tick() // prices move before the open

	path := filepath.Join(t.TempDir(), "t.af")
	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "quotes"},
		NoData:  true,
		Params:  map[string]string{"addrs": addr},
	}); err != nil {
		t.Fatal(err)
	}
	f, err := activefile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil || !strings.HasPrefix(string(got), "T\t") {
		t.Errorf("ticker = (%q, %v)", got, err)
	}
}

func TestMailServerBacksMailbox(t *testing.T) {
	srv := services.NewMailServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dir := t.TempDir()
	outPath := filepath.Join(dir, "out.af")
	if err := activefile.Create(outPath, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "outbox"},
		NoData:  true,
		Params:  map[string]string{"server": addr},
	}); err != nil {
		t.Fatal(err)
	}
	f, err := activefile.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("To: rx@here\n\nhello\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if srv.Count("rx@here") != 1 {
		t.Fatalf("Count = %d, want 1", srv.Count("rx@here"))
	}
	msgs := srv.Messages("rx@here")
	if len(msgs) != 1 || !strings.Contains(string(msgs[0]), "hello") {
		t.Errorf("messages = %q", msgs)
	}
	srv.Deposit("rx@here", []byte("direct deposit"))
	if srv.Count("rx@here") != 2 {
		t.Errorf("Count after deposit = %d", srv.Count("rx@here"))
	}
}

func TestQuoteServerSetQuote(t *testing.T) {
	srv := services.NewQuoteServer(nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetQuote("NEW", 12345)

	path := filepath.Join(t.TempDir(), "q.af")
	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "quotes"},
		NoData:  true,
		Params:  map[string]string{"addrs": addr},
	}); err != nil {
		t.Fatal(err)
	}
	f, err := activefile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil || !strings.Contains(string(got), "123.45") {
		t.Errorf("ticker = (%q, %v)", got, err)
	}
}
