// Package services exposes the simulated remote information services that
// active files aggregate from and distribute to: a block file store (the
// "tcp" source kind), a stock-quote feed, and a mail drop. In the paper
// these are the distributed internet sources motivating the mechanism; here
// they are real TCP servers you can run in-process (examples, tests) or via
// cmd/afd.
package services

import (
	"time"

	"repro/internal/remote"
)

// FileServer is a TCP block-object store. Active files bound with
// SourceSpec{Kind: "tcp", Addr: addr, Path: name} read and write the named
// object on it.
type FileServer struct {
	inner *remote.FileServer
}

// NewFileServer returns a server with an empty object store.
func NewFileServer() *FileServer {
	return &FileServer{inner: remote.NewFileServer()}
}

// Start begins listening on addr ("127.0.0.1:0" for an ephemeral port) and
// returns the bound address.
func (s *FileServer) Start(addr string) (string, error) { return s.inner.Start(addr) }

// Close stops the server.
func (s *FileServer) Close() error { return s.inner.Close() }

// Put creates or replaces the named object.
func (s *FileServer) Put(name string, data []byte) { s.inner.Put(name, data) }

// Get returns a copy of the named object's contents.
func (s *FileServer) Get(name string) ([]byte, bool) { return s.inner.Get(name) }

// SetLatency injects a fixed per-operation delay, simulating a distant
// source.
func (s *FileServer) SetLatency(d time.Duration) { s.inner.SetLatency(d) }

// Quote is one instrument's latest price in cents.
type Quote struct {
	Symbol string
	Cents  int64
}

// QuoteServer is a TCP stock-quote feed for the "quotes" sentinel program
// (its "addrs" parameter).
type QuoteServer struct {
	inner *remote.QuoteServer
}

// NewQuoteServer returns a feed seeded with the given quotes.
func NewQuoteServer(initial []Quote) *QuoteServer {
	conv := make([]remote.Quote, len(initial))
	for i, q := range initial {
		conv[i] = remote.Quote{Symbol: q.Symbol, Cents: q.Cents}
	}
	return &QuoteServer{inner: remote.NewQuoteServer(conv)}
}

// Start begins listening on addr and returns the bound address.
func (s *QuoteServer) Start(addr string) (string, error) { return s.inner.Start(addr) }

// Close stops the server.
func (s *QuoteServer) Close() error { return s.inner.Close() }

// SetQuote updates one instrument.
func (s *QuoteServer) SetQuote(symbol string, cents int64) { s.inner.SetQuote(symbol, cents) }

// Tick applies a deterministic pseudo-random walk to every price.
func (s *QuoteServer) Tick() { s.inner.Tick() }

// MailServer is a TCP message drop with POP-style retrieval and SMTP-style
// delivery, for the "inbox" and "outbox" sentinel programs.
type MailServer struct {
	inner *remote.MailServer
}

// NewMailServer returns an empty message drop.
func NewMailServer() *MailServer {
	return &MailServer{inner: remote.NewMailServer()}
}

// Start begins listening on addr and returns the bound address.
func (s *MailServer) Start(addr string) (string, error) { return s.inner.Start(addr) }

// Close stops the server.
func (s *MailServer) Close() error { return s.inner.Close() }

// Deposit places a message directly into a mailbox.
func (s *MailServer) Deposit(mailbox string, msg []byte) { s.inner.Deposit(mailbox, msg) }

// Count returns the number of messages waiting in mailbox.
func (s *MailServer) Count(mailbox string) int { return s.inner.Count(mailbox) }

// Messages returns copies of the messages in mailbox.
func (s *MailServer) Messages(mailbox string) [][]byte { return s.inner.Messages(mailbox) }
