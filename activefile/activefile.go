// Package activefile is the public API of the active-files library, a Go
// reproduction of "Active Files: A Mechanism for Integrating Legacy
// Applications into Distributed Systems" (ICDCS 2000).
//
// An active file looks and behaves exactly like a regular file, but opening
// it starts a sentinel — a program that filters all data entering and
// leaving the file and can aggregate from or distribute to remote
// information sources. Legacy code written against the File interface (or
// plain io interfaces) needs no changes:
//
//	def := activefile.Definition{
//	    Program: activefile.ProgramSpec{Name: "filter:upper"},
//	    Cache:   activefile.CacheDisk,
//	}
//	if err := activefile.Create("notes.af", def); err != nil { ... }
//	f, err := activefile.Open("notes.af")   // starts the sentinel
//	f.Write([]byte("hello"))                // filtered transparently
//
// The package also exposes the four implementation strategies the paper
// evaluates (process, process-plus-control, thread, direct), selectable per
// file or per open.
package activefile

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/vfs"
)

// Strategy selects how the sentinel is instantiated, trading overhead
// against capability (§4 of the paper).
type Strategy int

// Available strategies. StrategyDefault defers to the file's manifest.
const (
	StrategyDefault Strategy = iota
	// StrategyProcess runs the sentinel as a separate process with two data
	// pipes; seek/size/positioned operations are unsupported.
	StrategyProcess
	// StrategyProcessControl adds a control channel, supporting the full
	// file API across a process boundary.
	StrategyProcessControl
	// StrategyThread runs the sentinel as a goroutine in this process.
	StrategyThread
	// StrategyDirect dispatches operations as plain calls into the program.
	StrategyDirect
)

// String returns the manifest spelling of the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyDefault:
		return "default"
	case StrategyProcess:
		return "process"
	case StrategyProcessControl:
		return "procctl"
	case StrategyThread:
		return "thread"
	case StrategyDirect:
		return "direct"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

func (s Strategy) toCore() (core.Strategy, error) {
	switch s {
	case StrategyDefault:
		return 0, nil
	case StrategyProcess:
		return core.StrategyProcess, nil
	case StrategyProcessControl:
		return core.StrategyProcCtl, nil
	case StrategyThread:
		return core.StrategyThread, nil
	case StrategyDirect:
		return core.StrategyDirect, nil
	default:
		return 0, fmt.Errorf("activefile: invalid strategy %d", int(s))
	}
}

func strategyFromCore(s core.Strategy) Strategy {
	switch s {
	case core.StrategyProcess:
		return StrategyProcess
	case core.StrategyProcCtl:
		return StrategyProcessControl
	case core.StrategyThread:
		return StrategyThread
	case core.StrategyDirect:
		return StrategyDirect
	default:
		return StrategyDefault
	}
}

// CacheMode selects the sentinel's caching path (Figure 5 of the paper).
type CacheMode int

// Available cache modes. CacheDefault behaves as CacheNone.
const (
	CacheDefault CacheMode = iota
	// CacheNone forwards every operation to the source.
	CacheNone
	// CacheDisk uses the file's on-disk data part as the cache.
	CacheDisk
	// CacheMemory keeps the cache in the sentinel's memory.
	CacheMemory
)

// String returns the manifest spelling of the cache mode.
func (c CacheMode) String() string {
	switch c {
	case CacheDefault, CacheNone:
		return "none"
	case CacheDisk:
		return "disk"
	case CacheMemory:
		return "memory"
	default:
		return fmt.Sprintf("cache(%d)", int(c))
	}
}

func cacheFromString(s string) CacheMode {
	switch s {
	case "disk":
		return CacheDisk
	case "memory", "mem":
		return CacheMemory
	default:
		return CacheNone
	}
}

// ProgramSpec names the sentinel program — the file's active part.
type ProgramSpec struct {
	// Name of a registered program ("passthrough", "filter:upper",
	// "compress", "quotes", "inbox", "outbox", "logger", "registryfile",
	// "generate", or one added with sentinel.Register).
	Name string
	// Exec optionally points at a standalone sentinel executable used by the
	// process strategies instead of re-executing the current binary.
	Exec string
	// Args are extra arguments for that executable.
	Args []string
}

// SourceSpec binds an active file to a remote information source.
type SourceSpec struct {
	// Kind is the transport; "tcp" reaches the library's block file service.
	Kind string
	// Addr is the network address.
	Addr string
	// Path is the object name within the source.
	Path string
}

// Definition describes an active file to be created: program, default
// strategy, caching path, remote source, and program parameters.
type Definition struct {
	Program  ProgramSpec
	Strategy Strategy
	Cache    CacheMode
	Source   SourceSpec
	Params   map[string]string
	// NoData creates the file without a data part; the sentinel synthesizes
	// all content (data-generation programs).
	NoData bool
}

func (d Definition) toManifest() (vfs.Manifest, error) {
	m := vfs.Manifest{
		Program: vfs.ProgramSpec{Name: d.Program.Name, Exec: d.Program.Exec, Args: d.Program.Args},
		Source:  vfs.SourceSpec{Kind: d.Source.Kind, Addr: d.Source.Addr, Path: d.Source.Path},
		Params:  d.Params,
		NoData:  d.NoData,
	}
	if d.Strategy != StrategyDefault {
		cs, err := d.Strategy.toCore()
		if err != nil {
			return vfs.Manifest{}, err
		}
		m.Strategy = cs.String()
	}
	if d.Cache != CacheDefault {
		m.Cache = d.Cache.String()
	}
	return m, nil
}

func definitionFromManifest(m vfs.Manifest) Definition {
	d := Definition{
		Program: ProgramSpec{Name: m.Program.Name, Exec: m.Program.Exec, Args: m.Program.Args},
		Source:  SourceSpec{Kind: m.Source.Kind, Addr: m.Source.Addr, Path: m.Source.Path},
		Params:  m.Params,
		NoData:  m.NoData,
		Cache:   cacheFromString(m.Cache),
	}
	if cs, err := core.ParseStrategy(m.Strategy); err == nil && m.Strategy != "" {
		d.Strategy = strategyFromCore(cs)
	}
	return d
}

// Create writes a new active file at path (which must end in ".af"): its
// manifest plus, unless NoData, an empty data part.
func Create(path string, def Definition) error {
	m, err := def.toManifest()
	if err != nil {
		return err
	}
	return vfs.Create(path, m)
}

// Stat returns the definition of the active file at path.
func Stat(path string) (Definition, error) {
	m, err := vfs.Load(path)
	if err != nil {
		return Definition{}, err
	}
	return definitionFromManifest(m), nil
}

// IsActive reports whether path names an active file (by extension, the
// same check the interposition stubs perform).
func IsActive(path string) bool { return vfs.IsActive(path) }

// DataPath returns the location of an active file's data part.
func DataPath(path string) string { return vfs.DataPath(path) }

// Copy duplicates the active file at src to dst: manifest and data part
// both, yielding an independent active file with the same components.
func Copy(src, dst string) error { return vfs.Copy(src, dst) }

// Rename moves the active file at src to dst, carrying the data part along.
func Rename(src, dst string) error { return vfs.Rename(src, dst) }

// Remove deletes the active file at path: manifest and data part.
func Remove(path string) error { return vfs.Remove(path) }

// List returns the active files directly inside dir.
func List(dir string) ([]string, error) { return vfs.List(dir) }
