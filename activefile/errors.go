package activefile

import "repro/internal/wire"

// Errors surfaced by active-file operations, matchable with errors.Is.
var (
	// ErrUnsupported reports an operation the implementation strategy or
	// sentinel program cannot perform — notably seek, size, and positioned
	// I/O on the plain process strategy ("simply dropped with an
	// appropriate return code", §4.1), and writes to read-only programs.
	ErrUnsupported = wire.ErrUnsupported
	// ErrClosed reports use of a handle after Close.
	ErrClosed = wire.ErrClosed
	// ErrBusy reports a byte-range lock conflict surfaced by a sentinel.
	ErrBusy = wire.ErrBusy
	// ErrNotFound reports a missing remote object or program resource.
	ErrNotFound = wire.ErrNotFound
)
