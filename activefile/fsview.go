package activefile

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// DirFS returns an io/fs.FS rooted at dir in which opening an active file
// starts its sentinel: fs.ReadFile, fs.WalkDir, and any code consuming
// io/fs sees sentinel-mediated content without knowing it. Directories and
// passive files behave exactly as in os.DirFS.
//
// The returned file system is read-oriented (io/fs has no write surface);
// use Open/OpenActive for writable sessions.
func DirFS(dir string) fs.FS {
	return dirFS{dir: dir, os: os.DirFS(dir)}
}

type dirFS struct {
	dir string
	os  fs.FS
}

var _ fs.FS = dirFS{}

// Open implements fs.FS.
func (d dirFS) Open(name string) (fs.File, error) {
	if !fs.ValidPath(name) {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrInvalid}
	}
	full := filepath.Join(d.dir, filepath.FromSlash(name))
	if !IsActive(full) {
		return d.os.Open(name) // directories and passive files
	}
	registerBuiltins()
	h, err := OpenActive(full)
	if err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	return &fsFile{h: h, name: filepath.Base(name)}, nil
}

// fsFile adapts a Handle to fs.File.
type fsFile struct {
	h    *Handle
	name string
}

var _ fs.File = (*fsFile)(nil)

// Read implements fs.File.
func (f *fsFile) Read(p []byte) (int, error) { return f.h.Read(p) }

// Close implements fs.File.
func (f *fsFile) Close() error { return f.h.Close() }

// Stat implements fs.File. The size is the sentinel's view of the session
// content, which can differ from (and supersede) the stored form.
func (f *fsFile) Stat() (fs.FileInfo, error) {
	size, err := f.h.Size()
	if err != nil {
		return nil, fmt.Errorf("stat active file %q: %w", f.name, err)
	}
	return fileInfo{name: f.name, size: size}, nil
}

// fileInfo is the minimal FileInfo for an active-file session.
type fileInfo struct {
	name string
	size int64
}

var _ fs.FileInfo = fileInfo{}

func (fi fileInfo) Name() string       { return fi.name }
func (fi fileInfo) Size() int64        { return fi.size }
func (fi fileInfo) Mode() fs.FileMode  { return 0o644 }
func (fi fileInfo) ModTime() time.Time { return time.Time{} }
func (fi fileInfo) IsDir() bool        { return false }
func (fi fileInfo) Sys() any           { return nil }
