package activefile_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/activefile"
)

// TestActiveFileIndistinguishableProperty is the paper's central claim as a
// property test: "from the user process' perspective, interactions with
// active files are indistinguishable from interactions with ordinary
// (passive) files". A random sequence of file operations is applied to a
// passive file and to an active file (null sentinel) under each positioned
// strategy; every result — data read, sizes, offsets, error presence — must
// match.
func TestActiveFileIndistinguishableProperty(t *testing.T) {
	strategies := []activefile.Strategy{
		activefile.StrategyProcessControl,
		activefile.StrategyThread,
		activefile.StrategyDirect,
	}
	for _, strategy := range strategies {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			f := func(seed int64) bool {
				return runEquivalenceTrace(t, strategy, seed)
			}
			cfg := &quick.Config{MaxCount: 10}
			if strategy == activefile.StrategyProcessControl {
				cfg.MaxCount = 3 // subprocess spawns are costly
			}
			if err := quick.Check(f, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

// runEquivalenceTrace drives one random operation trace against both files.
func runEquivalenceTrace(t *testing.T, strategy activefile.Strategy, seed int64) bool {
	t.Helper()
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(seed))

	passivePath := filepath.Join(dir, "p.txt")
	if err := os.WriteFile(passivePath, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	passive, err := os.OpenFile(passivePath, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer passive.Close()

	activePath := filepath.Join(dir, "a.af")
	if err := activefile.Create(activePath, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "passthrough"},
		Cache:   activefile.CacheDisk,
	}); err != nil {
		t.Fatal(err)
	}
	active, err := activefile.OpenActive(activePath, activefile.WithStrategy(strategy))
	if err != nil {
		t.Fatal(err)
	}
	defer active.Close()

	for step := 0; step < 40; step++ {
		if desc, ok := applyRandomOp(rng, passive, active); !ok {
			t.Logf("seed %d step %d diverged: %s", seed, step, desc)
			return false
		}
	}
	return true
}

// fileAPI is the common surface of *os.File and *activefile.Handle used by
// the trace.
type fileAPI interface {
	io.ReadWriteSeeker
	io.ReaderAt
	io.WriterAt
	Truncate(int64) error
}

// applyRandomOp performs one random operation on both files and compares
// outcomes. It reports a description of any divergence.
func applyRandomOp(rng *rand.Rand, passive *os.File, active *activefile.Handle) (string, bool) {
	op := rng.Intn(7)
	switch op {
	case 0: // sequential write
		data := make([]byte, rng.Intn(200))
		rng.Read(data)
		pn, perr := passive.Write(data)
		an, aerr := active.Write(data)
		if pn != an || (perr == nil) != (aerr == nil) {
			return fmt.Sprintf("Write: passive (%d,%v) active (%d,%v)", pn, perr, an, aerr), false
		}
	case 1: // sequential read
		n := rng.Intn(200) + 1
		pbuf := make([]byte, n)
		abuf := make([]byte, n)
		pn, perr := io.ReadFull(passive, pbuf)
		an, aerr := io.ReadFull(active, abuf)
		if pn != an || !bytes.Equal(pbuf[:pn], abuf[:an]) {
			return fmt.Sprintf("Read: passive (%d,%v) active (%d,%v)", pn, perr, an, aerr), false
		}
		if !sameErrClass(perr, aerr) {
			return fmt.Sprintf("Read errors: passive %v active %v", perr, aerr), false
		}
	case 2: // seek
		whence := []int{io.SeekStart, io.SeekCurrent, io.SeekEnd}[rng.Intn(3)]
		off := int64(rng.Intn(300))
		if whence == io.SeekEnd {
			off = -off // stay within the file going backwards from the end
		}
		ppos, perr := passive.Seek(off, whence)
		apos, aerr := active.Seek(off, whence)
		if perr != nil || aerr != nil {
			// Negative targets can error; both must agree and stay usable.
			if (perr == nil) != (aerr == nil) {
				return fmt.Sprintf("Seek errors: passive %v active %v", perr, aerr), false
			}
			if perr != nil {
				// Both errored; resynchronize both offsets.
				passive.Seek(0, io.SeekStart)
				active.Seek(0, io.SeekStart)
				return "", true
			}
		}
		if ppos != apos {
			return fmt.Sprintf("Seek: passive %d active %d", ppos, apos), false
		}
	case 3: // positioned write
		data := make([]byte, rng.Intn(100))
		rng.Read(data)
		off := int64(rng.Intn(400))
		pn, perr := passive.WriteAt(data, off)
		an, aerr := active.WriteAt(data, off)
		if pn != an || (perr == nil) != (aerr == nil) {
			return fmt.Sprintf("WriteAt: passive (%d,%v) active (%d,%v)", pn, perr, an, aerr), false
		}
	case 4: // positioned read
		n := rng.Intn(100) + 1
		off := int64(rng.Intn(400))
		pbuf := make([]byte, n)
		abuf := make([]byte, n)
		pn, perr := passive.ReadAt(pbuf, off)
		an, aerr := active.ReadAt(abuf, off)
		if pn != an || !bytes.Equal(pbuf[:pn], abuf[:an]) || !sameErrClass(perr, aerr) {
			return fmt.Sprintf("ReadAt(%d): passive (%d,%v) active (%d,%v)", off, pn, perr, an, aerr), false
		}
	case 5: // truncate
		n := int64(rng.Intn(300))
		perr := passive.Truncate(n)
		aerr := active.Truncate(n)
		if (perr == nil) != (aerr == nil) {
			return fmt.Sprintf("Truncate: passive %v active %v", perr, aerr), false
		}
	case 6: // size
		pinfo, perr := passive.Stat()
		asize, aerr := active.Size()
		if perr != nil || aerr != nil {
			return fmt.Sprintf("Size errors: passive %v active %v", perr, aerr), false
		}
		if pinfo.Size() != asize {
			return fmt.Sprintf("Size: passive %d active %d", pinfo.Size(), asize), false
		}
	}
	return "", true
}

// sameErrClass treats nil, io.EOF, and io.ErrUnexpectedEOF as the classes
// that must match between the two files.
func sameErrClass(a, b error) bool {
	class := func(err error) int {
		switch {
		case err == nil:
			return 0
		case errors.Is(err, io.EOF):
			return 1
		case errors.Is(err, io.ErrUnexpectedEOF):
			return 2
		default:
			return 3
		}
	}
	return class(a) == class(b)
}
