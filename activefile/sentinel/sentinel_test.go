package sentinel_test

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/activefile"
	"repro/activefile/sentinel"
	"repro/activefile/services"
)

func TestMain(m *testing.M) {
	sentinel.MaybeChild()
	os.Exit(m.Run())
}

// envProbe is a program that records what its Env exposes.
type envProbe struct {
	gotPath    string
	gotProgram string
	gotParam   string
	gotDefault string
	sourceNil  bool
	sourceErr  error
}

func (p *envProbe) Name() string { return "env-probe" }

func (p *envProbe) Open(env *sentinel.Env) (sentinel.Handler, error) {
	p.gotPath = env.Path()
	p.gotProgram = env.ProgramName()
	p.gotParam = env.Param("set", "")
	p.gotDefault = env.Param("unset", "fallback")
	src, err := env.OpenSource()
	p.sourceNil = src == nil
	p.sourceErr = err
	if src != nil {
		src.Close()
	}
	storage, err := env.OpenStorage()
	if err != nil {
		return nil, err
	}
	return probeHandler{storage}, nil
}

type probeHandler struct {
	storage sentinel.Storage
}

func (h probeHandler) ReadAt(p []byte, off int64) (int, error)  { return h.storage.ReadAt(p, off) }
func (h probeHandler) WriteAt(p []byte, off int64) (int, error) { return h.storage.WriteAt(p, off) }
func (h probeHandler) Size() (int64, error)                     { return h.storage.Size() }
func (h probeHandler) Truncate(n int64) error                   { return h.storage.Truncate(n) }
func (h probeHandler) Sync() error                              { return h.storage.Sync() }
func (h probeHandler) Close() error                             { return h.storage.Close() }

func TestEnvExposesDefinition(t *testing.T) {
	probe := &envProbe{}
	sentinel.Register(probe)

	path := filepath.Join(t.TempDir(), "probe.af")
	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "env-probe"},
		Cache:   activefile.CacheMemory,
		Params:  map[string]string{"set": "value"},
	}); err != nil {
		t.Fatal(err)
	}
	h, err := activefile.OpenActive(path, activefile.WithStrategy(activefile.StrategyDirect))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	if probe.gotPath != path {
		t.Errorf("Path() = %q, want %q", probe.gotPath, path)
	}
	if probe.gotProgram != "env-probe" {
		t.Errorf("ProgramName() = %q", probe.gotProgram)
	}
	if probe.gotParam != "value" || probe.gotDefault != "fallback" {
		t.Errorf("Param = %q / %q", probe.gotParam, probe.gotDefault)
	}
	if !probe.sourceNil || probe.sourceErr != nil {
		t.Errorf("OpenSource without binding = (nil=%v, %v), want (true, nil)",
			probe.sourceNil, probe.sourceErr)
	}
}

func TestEnvOpenSourceWithBinding(t *testing.T) {
	srv := services.NewFileServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Put("obj", []byte("bound"))

	probe := &envProbe{}
	sentinel.Register(probe)
	path := filepath.Join(t.TempDir(), "bound.af")
	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "env-probe"},
		Cache:   activefile.CacheMemory,
		Source:  activefile.SourceSpec{Kind: "tcp", Addr: addr, Path: "obj"},
	}); err != nil {
		t.Fatal(err)
	}
	h, err := activefile.OpenActive(path, activefile.WithStrategy(activefile.StrategyDirect))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if probe.sourceNil || probe.sourceErr != nil {
		t.Errorf("OpenSource with binding = (nil=%v, %v)", probe.sourceNil, probe.sourceErr)
	}
	// The memory cache populated from the source.
	got, err := io.ReadAll(h)
	if err != nil || string(got) != "bound" {
		t.Errorf("content = (%q, %v)", got, err)
	}
}

// failingProgram returns an error from Open; it must surface to the opener.
type failingProgram struct{}

func (failingProgram) Name() string { return "always-fails" }

func (failingProgram) Open(*sentinel.Env) (sentinel.Handler, error) {
	return nil, errors.New("deliberate open failure")
}

func TestProgramOpenErrorSurfaces(t *testing.T) {
	sentinel.Register(failingProgram{})
	path := filepath.Join(t.TempDir(), "f.af")
	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "always-fails"},
	}); err != nil {
		t.Fatal(err)
	}
	_, err := activefile.OpenActive(path, activefile.WithStrategy(activefile.StrategyThread))
	if err == nil || !containsStr(err.Error(), "deliberate open failure") {
		t.Errorf("OpenActive err = %v, want the program's failure", err)
	}
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

func TestRegisterReplacesSameName(t *testing.T) {
	sentinel.Register(failingProgram{})
	sentinel.Register(failingProgram{}) // replacement is allowed
	count := 0
	for _, name := range sentinel.Programs() {
		if name == "always-fails" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("program listed %d times", count)
	}
}

func TestRegisterBuiltinsIdempotent(t *testing.T) {
	sentinel.RegisterBuiltins()
	first := len(sentinel.Programs())
	sentinel.RegisterBuiltins()
	if got := len(sentinel.Programs()); got != first {
		t.Errorf("program count changed %d -> %d", first, got)
	}
}
