// Package sentinel is the authoring kit for sentinel programs — the active
// parts of active files. A program implements Program (a constructor) and
// Handler (the per-session operations); Register makes it available under
// its name to every implementation strategy, including sentinel
// subprocesses via MaybeChild.
//
//	type shout struct{}
//
//	func (shout) Name() string { return "shout" }
//	func (shout) Open(env *sentinel.Env) (sentinel.Handler, error) { ... }
//
//	func main() {
//	    sentinel.Register(shout{})
//	    sentinel.MaybeChild() // become a sentinel if spawned as one
//	    ...
//	}
package sentinel

import (
	"repro/internal/core"
	"repro/internal/program"
)

// Handler serves the file operations of one open session. ReadAt/WriteAt
// move content; Size/Truncate manage length; Sync flushes; Close ends the
// session. Handlers are called from a single goroutine per session.
type Handler interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Size() (int64, error)
	Truncate(n int64) error
	Sync() error
	Close() error
}

// Locker is optionally implemented by handlers supporting byte-range locks.
type Locker interface {
	Lock(off, n int64) error
	Unlock(off, n int64) error
}

// Controller is optionally implemented by handlers accepting out-of-band
// control commands.
type Controller interface {
	Control(req []byte) ([]byte, error)
}

// Program is a sentinel program: Open is called once per application open
// of an active file bound to it.
type Program interface {
	// Name is the identifier referenced by active-file definitions.
	Name() string
	// Open begins a session in the given environment.
	Open(env *Env) (Handler, error)
}

// Env describes the environment of one session: the file's definition
// parameters, its data part, and its remote source.
type Env struct {
	inner *core.Env
}

// Path returns the active file's manifest path.
func (e *Env) Path() string { return e.inner.Path }

// Param returns a program parameter from the file's definition, or def when
// unset.
func (e *Env) Param(key, def string) string { return e.inner.Param(key, def) }

// ProgramName returns the program name the file was defined with.
func (e *Env) ProgramName() string { return e.inner.Manifest.Program.Name }

// Storage is random-access storage with flush semantics; OpenStorage
// returns one realizing the file's configured caching path.
type Storage interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Size() (int64, error)
	Truncate(n int64) error
	Sync() error
	Close() error
}

// Source is a connection to the file's remote information source.
type Source interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Size() (int64, error)
	Truncate(n int64) error
	Close() error
}

// OpenStorage assembles the storage backend for the file's cache mode and
// source binding (the Figure 5 critical paths). Most filtering programs
// should read and write through this.
func (e *Env) OpenStorage() (Storage, error) {
	return e.inner.OpenBackend()
}

// OpenSource dials the file's remote source directly, bypassing any cache.
// It returns (nil, nil) when the definition binds no source.
func (e *Env) OpenSource() (Source, error) {
	src, err := e.inner.OpenSource()
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, nil
	}
	return src, nil
}

// coreProgram adapts a public Program to the engine's interface.
type coreProgram struct {
	p Program
}

var _ core.Program = coreProgram{}

func (cp coreProgram) Name() string { return cp.p.Name() }

func (cp coreProgram) Open(env *core.Env) (core.Handler, error) {
	h, err := cp.p.Open(&Env{inner: env})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// Register installs p in the default program registry, replacing any
// previous program of the same name.
func Register(p Program) {
	core.Register(coreProgram{p: p})
}

// RegisterBuiltins installs the library's built-in programs (passthrough,
// filters, compress, generate, quotes, inbox, outbox, logger,
// registryfile). Open does this automatically; standalone sentinel binaries
// call it explicitly.
func RegisterBuiltins() { program.RegisterAll() }

// MaybeChild turns this process into a sentinel if it was spawned as one by
// a process-strategy open; it never returns in that case. Any binary that
// opens active files with the process strategies must call MaybeChild early
// in main (after registering custom programs).
func MaybeChild() {
	program.RegisterAll()
	core.RunChildIfRequested()
}

// Programs returns the names of every registered program.
func Programs() []string { return core.ProgramNames() }
