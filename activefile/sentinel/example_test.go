package sentinel_test

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/activefile"
	"repro/activefile/sentinel"
)

// reverser is a complete custom sentinel program: it stores content
// reversed and serves it back in order — a whole-file transform, so it
// buffers the session image and commits on close like the built-in
// compression program does.
type reverser struct{}

func (reverser) Name() string { return "reverse" }

func (reverser) Open(env *sentinel.Env) (sentinel.Handler, error) {
	storage, err := env.OpenStorage()
	if err != nil {
		return nil, err
	}
	return &reverserHandler{storage: storage}, nil
}

type reverserHandler struct {
	storage sentinel.Storage
}

func (h *reverserHandler) ReadAt(p []byte, off int64) (int, error) {
	size, err := h.storage.Size()
	if err != nil {
		return 0, err
	}
	if off >= size {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > size-off {
		n = int(size - off)
	}
	// Byte i of the view is byte size-1-i of storage.
	tmp := make([]byte, n)
	if _, err := h.storage.ReadAt(tmp, size-off-int64(n)); err != nil && err != io.EOF {
		return 0, err
	}
	for i := 0; i < n; i++ {
		p[i] = tmp[n-1-i]
	}
	if int64(n) == size-off {
		return n, io.EOF
	}
	return n, nil
}

func (h *reverserHandler) WriteAt(p []byte, off int64) (int, error) {
	// Keep the example simple: only appends at the current end are stored
	// (reversed into position zero onwards).
	size, err := h.storage.Size()
	if err != nil {
		return 0, err
	}
	if off != size {
		return 0, fmt.Errorf("reverse: only appends supported")
	}
	rev := make([]byte, len(p))
	for i, b := range p {
		rev[len(p)-1-i] = b
	}
	// Prepend by rewriting: read existing, write rev + existing.
	old := make([]byte, size)
	if size > 0 {
		if _, err := h.storage.ReadAt(old, 0); err != nil && err != io.EOF {
			return 0, err
		}
	}
	if _, err := h.storage.WriteAt(rev, 0); err != nil {
		return 0, err
	}
	if _, err := h.storage.WriteAt(old, int64(len(rev))); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (h *reverserHandler) Size() (int64, error)   { return h.storage.Size() }
func (h *reverserHandler) Truncate(n int64) error { return h.storage.Truncate(n) }
func (h *reverserHandler) Sync() error            { return h.storage.Sync() }
func (h *reverserHandler) Close() error           { return h.storage.Close() }

// Register a custom program and bind an active file to it; the application
// reads its own text back while the data part holds the reversed form.
func Example() {
	sentinel.Register(reverser{})

	dir, err := os.MkdirTemp("", "af-reverse")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "r.af")

	if err := activefile.Create(path, activefile.Definition{
		Program: activefile.ProgramSpec{Name: "reverse"},
		Cache:   activefile.CacheDisk,
	}); err != nil {
		log.Fatal(err)
	}
	f, err := activefile.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Write([]byte("palindrome")); err != nil {
		log.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		log.Fatal(err)
	}
	view, err := io.ReadAll(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	stored, err := os.ReadFile(activefile.DataPath(path))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("view:  ", string(view))
	fmt.Println("stored:", string(stored))
	// Output:
	// view:   palindrome
	// stored: emordnilap
}
