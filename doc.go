// Package repro is a Go reproduction of "Active Files: A Mechanism for
// Integrating Legacy Applications into Distributed Systems" (Dasgupta,
// Itzkovitz, Karamcheti — ICDCS 2000).
//
// The public API lives in repro/activefile (using active files) and
// repro/activefile/sentinel (authoring sentinel programs). The benchmarks in
// bench_test.go regenerate the paper's Figure 6; cmd/afbench prints the same
// series with the paper's exact methodology. See README.md, DESIGN.md, and
// EXPERIMENTS.md.
package repro
